"""Durable execution: reducer state contract, journal, crash/resume.

Three layers under test (see ``repro/engine/vector/checkpoint.py``):

* **state contract** — every registered reducer round-trips through
  ``to_state()``/``from_state()`` bit-identically, including non-finite
  draws and empty partials, and a revived partial merges to the exact
  state the original would have;
* **journal** — atomic persistence, resume, typed identity-mismatch
  errors, corruption-means-cold-start, and a crash *during* the save
  leaving the previous checkpoint intact;
* **crash/resume** — a streaming Monte-Carlo killed mid-run (in-process
  fault or a real SIGKILL of the whole process) and resumed against the
  same checkpoint finishes to results bit-identical to an uninterrupted
  run: summary counters, moments, quantile sketch, top-k and Pareto
  front.

``CHAOS_QUICK=1`` (the CI default, see ``scripts/check.sh``) scales the
SIGKILL study down to 1M draws; the invariants asserted are identical.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.montecarlo import monte_carlo_stream
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine
from repro.engine.serve.faults import FaultPlan
from repro.engine.vector import (
    BatchResult,
    Checkpoint,
    CheckpointJournal,
    HistogramReducer,
    MomentsReducer,
    MonteCarloChunkSource,
    ParetoReducer,
    ReservoirQuantiles,
    StreamingReduction,
    TopKReducer,
    WinCountReducer,
    extract_row,
    run_stream,
    source_token,
)
from repro.engine.vector.reducers import REDUCER_REGISTRY
from repro.errors import (
    CheckpointMismatchError,
    ParameterError,
)
from repro.experiments.ext_uncertainty import distributions as table1_distributions

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)

QUICK = os.environ.get("CHAOS_QUICK", "0") == "1"

#: Draws in the SIGKILL chaos study — 1M+ in both modes (the acceptance
#: bar), larger in full mode so kills land deeper into the run.
SIGKILL_DRAWS = 1_200_000 if QUICK else 4_000_000


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _fake_result(
    ratios: np.ndarray,
    winners: "np.ndarray | None" = None,
    fpga: "np.ndarray | None" = None,
    asic: "np.ndarray | None" = None,
) -> BatchResult:
    """A minimal BatchResult carrying only the columns reducers read."""
    n = ratios.shape[0]
    zeros = np.zeros(n)
    ints = np.zeros(n, dtype=np.int64)
    return BatchResult(
        ratios=np.asarray(ratios, dtype=np.float64),
        winners=(
            winners if winners is not None else np.full(n, "asic", dtype="<U4")
        ),
        fpga_totals=zeros if fpga is None else np.asarray(fpga, float),
        asic_totals=zeros if asic is None else np.asarray(asic, float),
        fpga_components={},
        asic_components={},
        fpga_per_chip_embodied_kg=zeros,
        asic_per_chip_embodied_kg=zeros,
        n_fpga=ints,
        fpga_generations=ints,
        asic_generations=ints,
        num_apps=ints,
    )


def _assert_states_equal(a: dict, b: dict) -> None:
    """Bit-identity over packed state dicts, NaN-aware for float arrays."""
    assert a.keys() == b.keys()
    for key in a:
        left, right = np.asarray(a[key]), np.asarray(b[key])
        assert left.dtype == right.dtype, key
        equal_nan = left.dtype.kind == "f"
        assert np.array_equal(left, right, equal_nan=equal_nan), key


#: One canonical instance per registered reducer type.  The alignment of
#: every factory divides 64, so offset-64 chunks satisfy all of them.
_REDUCER_FACTORIES = {
    MomentsReducer: lambda: MomentsReducer(block=64),
    WinCountReducer: WinCountReducer,
    HistogramReducer: lambda: HistogramReducer(0.0, 4.0, 16),
    ReservoirQuantiles: lambda: ReservoirQuantiles(k=48, seed=7),
    TopKReducer: lambda: TopKReducer(k=8),
    ParetoReducer: ParetoReducer,
}


def _chunk(offset: int, rows: int = 64) -> tuple[BatchResult, int]:
    """A deterministic chunk at ``offset`` with non-finite draws mixed in."""
    rng = np.random.default_rng(1000 + offset)
    ratios = rng.uniform(0.1, 3.5, size=rows)
    ratios[rng.integers(0, rows)] = np.nan
    ratios[rng.integers(0, rows)] = np.inf
    ratios[rng.integers(0, rows)] = -np.inf
    winners = np.where(rng.random(rows) < 0.4, "fpga", "asic").astype("<U4")
    fpga = rng.uniform(1.0, 9.0, size=rows)
    asic = rng.uniform(1.0, 9.0, size=rows)
    return _fake_result(ratios, winners, fpga, asic), offset


def _updated(factory, offsets: tuple[int, ...]):
    reducer = factory()
    for offset in offsets:
        result, off = _chunk(offset)
        reducer.update(result, off)
    return reducer


# ----------------------------------------------------------------------
# Satellite: reducer state-contract property test over the registry
# ----------------------------------------------------------------------


def test_registry_matches_factories():
    assert set(REDUCER_REGISTRY) == set(_REDUCER_FACTORIES)


@pytest.mark.parametrize(
    "cls", REDUCER_REGISTRY, ids=lambda cls: cls.__name__
)
def test_reducer_state_round_trip_and_merge_bit_identity(cls):
    factory = _REDUCER_FACTORIES[cls]

    # Round trip is bit-identical (non-finite draws included).
    original = _updated(factory, (0, 64))
    revived = factory().from_state(original.to_state())
    _assert_states_equal(revived.to_state(), original.to_state())

    # Merging revived partials == merging the originals, bit for bit.
    direct = _updated(factory, (0, 64))
    direct.merge(_updated(factory, (128, 192)))
    via_state = factory().from_state(_updated(factory, (0, 64)).to_state())
    via_state.merge(
        factory().from_state(_updated(factory, (128, 192)).to_state())
    )
    _assert_states_equal(via_state.to_state(), direct.to_state())

    # Empty partials round-trip and merge as no-ops.
    empty = factory().from_state(factory().to_state())
    _assert_states_equal(empty.to_state(), factory().to_state())
    padded = factory().from_state(_updated(factory, (0, 64)).to_state())
    padded.merge(empty)
    _assert_states_equal(
        padded.to_state(), _updated(factory, (0, 64)).to_state()
    )


def _bundle(quantile_k: int = 48) -> StreamingReduction:
    return StreamingReduction(
        {
            "moments": MomentsReducer(block=64),
            "wins": WinCountReducer(),
            "quantiles": ReservoirQuantiles(k=quantile_k, seed=7),
            "topk": TopKReducer(k=8),
            "pareto": ParetoReducer(),
        }
    )


def test_bundle_state_round_trip_and_schema_token():
    original = _updated(_bundle, (0, 64))
    revived = _bundle().from_state(original.to_state())
    _assert_states_equal(revived.to_state(), original.to_state())
    assert original.schema_token() == _bundle().schema_token()
    # The token is shape-level identity: a member swap changes it.
    assert (
        StreamingReduction({"wins": WinCountReducer()}).schema_token()
        != StreamingReduction({"pareto": ParetoReducer()}).schema_token()
    )


def test_bundle_rejects_member_drift_and_ambiguous_names():
    state = StreamingReduction({"wins": WinCountReducer()}).to_state()
    with pytest.raises(ParameterError, match="configured members"):
        StreamingReduction({"pareto": ParetoReducer()}).from_state(state)
    with pytest.raises(ParameterError, match="::"):
        StreamingReduction({"a::b": WinCountReducer()})


def test_moments_from_state_rejects_block_drift():
    state = MomentsReducer(block=64).to_state()
    with pytest.raises(ParameterError, match="block"):
        MomentsReducer(block=128).from_state(state)


# ----------------------------------------------------------------------
# Journal: persistence, resume, identity, corruption
# ----------------------------------------------------------------------


class _FakeSource:
    """Journal-level stand-in: identity attributes, no evaluation."""

    def __init__(self, n: int, seed: int = 11, token: str = "fake") -> None:
        self.n = n
        self.seed = seed
        self._token = token

    def checkpoint_token(self) -> str:
        return self._token


def _partial(start: int, stop: int) -> StreamingReduction:
    bundle = _bundle()
    for offset in range(start, stop, 64):
        result, off = _chunk(offset)
        bundle.update(result, off)
    return bundle


def _open(tmp_path, *, n=1024, chunk_rows=128, every_rows=256, seed=11,
          reduction=None, every_s=None, token="fake"):
    return CheckpointJournal.open(
        Checkpoint(tmp_path / "job.ckpt", every_rows=every_rows,
                   every_s=every_s),
        _FakeSource(n, seed=seed, token=token),
        _bundle() if reduction is None else reduction,
        n=n,
        chunk_rows=chunk_rows,
    )


def test_journal_persists_and_resumes(tmp_path):
    journal = _open(tmp_path)
    assert [u[0] for u in journal.pending()] == [0, 1, 2, 3]
    journal.complete(0, _partial(0, 256))
    journal.complete(1, _partial(256, 512))
    assert journal.flushes == 2  # every_rows == unit rows: flush per unit
    assert journal.rows_done == 512

    resumed = _open(tmp_path)
    assert resumed.resumed_units == 2
    assert [u[0] for u in resumed.pending()] == [2, 3]
    _assert_states_equal(
        resumed.merged.to_state(), journal.merged.to_state()
    )
    with pytest.raises(ParameterError, match="twice"):
        resumed.complete(0, _partial(0, 256))


def test_journal_identity_drift_raises_typed_error(tmp_path):
    _open(tmp_path).complete(0, _partial(0, 256))
    with pytest.raises(CheckpointMismatchError, match="seed"):
        _open(tmp_path, seed=12)
    with pytest.raises(CheckpointMismatchError, match="source"):
        _open(tmp_path, token="other-study")
    with pytest.raises(CheckpointMismatchError, match="n_rows"):
        _open(tmp_path, n=2048)
    with pytest.raises(CheckpointMismatchError, match="chunk_rows"):
        _open(tmp_path, chunk_rows=64)
    with pytest.raises(CheckpointMismatchError, match="schema"):
        _open(
            tmp_path,
            reduction=StreamingReduction({"wins": WinCountReducer()}),
        )
    # The original job still resumes fine after all those rejections.
    assert _open(tmp_path).resumed_units == 1


def test_journal_corruption_starts_cold(tmp_path, caplog):
    journal = _open(tmp_path)
    journal.complete(0, _partial(0, 256))
    path = tmp_path / "job.ckpt"
    FaultPlan(seed=3).corrupt_file(path, flips=32)
    with caplog.at_level("WARNING"):
        resumed = _open(tmp_path)
    assert resumed.resumed_units == 0
    assert len(resumed.pending()) == 4
    assert "starting from scratch" in caplog.text

    # Truncation (power loss mid-write without the atomic writer) and
    # outright garbage are the same cold start, not a crash.
    journal.flush(force=True)
    FaultPlan(seed=3).truncate_file(path, keep_fraction=0.3)
    assert _open(tmp_path).resumed_units == 0
    path.write_bytes(b"not a checkpoint at all")
    assert _open(tmp_path).resumed_units == 0


def test_journal_crash_mid_save_keeps_previous_checkpoint(
    tmp_path, monkeypatch
):
    journal = _open(tmp_path)
    journal.complete(0, _partial(0, 256))
    import repro.engine.atomicio as atomicio

    def _dies(src, dst):
        raise OSError("simulated crash during replace")

    monkeypatch.setattr(atomicio.os, "replace", _dies)
    with pytest.raises(OSError, match="simulated crash"):
        journal.complete(1, _partial(256, 512))
    monkeypatch.undo()

    # The torn save left no temp litter and the previous checkpoint is
    # intact: exactly unit 0 is restored.
    assert not list(tmp_path.glob("*.tmp.*"))
    resumed = _open(tmp_path)
    assert resumed.resumed_units == 1
    assert [u[0] for u in resumed.pending()] == [1, 2, 3]


def test_journal_config_validation(tmp_path):
    with pytest.raises(ParameterError, match="every_rows"):
        _open(tmp_path, every_rows=0)
    with pytest.raises(ParameterError, match="every_s"):
        _open(tmp_path, every_rows=None, every_s=0.0)


def test_source_token_prefers_semantic_digest():
    assert source_token(_FakeSource(8, token="abc")) == "abc"
    # Pickle-digest fallback: stable across identical sources.
    arr = np.arange(4.0)
    assert source_token(arr) == source_token(arr.copy())


# ----------------------------------------------------------------------
# Crash/resume end to end (in-process fault)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def comparator(suite):
    return PlatformComparator.for_domain("dnn", suite)


N_DRAWS = 16_384


def _mc_source(comparator, n: int = N_DRAWS) -> MonteCarloChunkSource:
    return MonteCarloChunkSource(
        np.asarray(extract_row(comparator)),
        tuple(table1_distributions()),
        2024,
        BASELINE,
        n,
    )


def _mc_bundle() -> StreamingReduction:
    return StreamingReduction(
        {
            "moments": MomentsReducer(block=512),
            "wins": WinCountReducer(),
            "quantiles": ReservoirQuantiles(k=2048, seed=2024),
            "topk": TopKReducer(k=16),
            "pareto": ParetoReducer(),
        }
    )


class _DiesAfter:
    """Source wrapper raising after ``healthy`` chunk computations."""

    def __init__(self, inner, healthy: int) -> None:
        self.inner = inner
        self.healthy = healthy
        self.calls = 0

    @property
    def n(self) -> int:
        return self.inner.n

    @property
    def seed(self) -> int:
        return self.inner.seed

    def checkpoint_token(self) -> str:
        return self.inner.checkpoint_token()

    def chunk(self, start: int, stop: int):
        self.calls += 1
        if self.calls > self.healthy:
            raise RuntimeError("injected mid-run failure")
        return self.inner.chunk(start, stop)


def test_checkpointed_run_bit_identical_to_plain_stream(
    comparator, tmp_path
):
    reference = run_stream(
        _mc_source(comparator), _mc_bundle(), chunk_rows=2048
    )
    checkpointed = run_stream(
        _mc_source(comparator),
        _mc_bundle(),
        chunk_rows=2048,
        checkpoint=Checkpoint(tmp_path / "mc.ckpt", every_rows=4096),
    )
    _assert_states_equal(
        checkpointed.to_state(), reference.to_state()
    )
    assert checkpointed["pareto"].rows() == reference["pareto"].rows()
    assert checkpointed["topk"].rows() == reference["topk"].rows()


def test_crash_then_resume_is_bit_identical_and_skips_done_work(
    comparator, tmp_path
):
    config = Checkpoint(tmp_path / "mc.ckpt", every_rows=4096)
    dying = _DiesAfter(_mc_source(comparator), healthy=3)
    with pytest.raises(RuntimeError, match="injected"):
        run_stream(dying, _mc_bundle(), chunk_rows=2048, checkpoint=config)

    # The interrupting flush persisted the completed units.
    survivor = CheckpointJournal.open(
        config, _mc_source(comparator), _mc_bundle(),
        n=N_DRAWS, chunk_rows=2048,
    )
    assert 0 < survivor.resumed_units < len(survivor.units)

    counting = _DiesAfter(_mc_source(comparator), healthy=10**9)
    resumed = run_stream(
        counting, _mc_bundle(), chunk_rows=2048, checkpoint=config
    )
    # Completed units were skipped, not recomputed.
    assert counting.calls < N_DRAWS // 2048
    reference = run_stream(
        _mc_source(comparator), _mc_bundle(), chunk_rows=2048
    )
    _assert_states_equal(resumed.to_state(), reference.to_state())
    assert resumed["wins"].n == N_DRAWS
    assert resumed["pareto"].rows() == reference["pareto"].rows()


def test_finished_checkpoint_short_circuits_the_source(comparator, tmp_path):
    config = Checkpoint(tmp_path / "mc.ckpt", every_rows=4096)
    first = run_stream(
        _mc_source(comparator), _mc_bundle(), chunk_rows=2048,
        checkpoint=config,
    )
    untouchable = _DiesAfter(_mc_source(comparator), healthy=0)
    replay = run_stream(
        untouchable, _mc_bundle(), chunk_rows=2048, checkpoint=config
    )
    assert untouchable.calls == 0
    _assert_states_equal(replay.to_state(), first.to_state())


def test_parallel_checkpoint_resume_matches_sequential(comparator, tmp_path):
    config = Checkpoint(tmp_path / "mc.ckpt", every_rows=4096)
    dying = _DiesAfter(_mc_source(comparator), healthy=2)
    with pytest.raises(RuntimeError, match="injected"):
        run_stream(dying, _mc_bundle(), chunk_rows=2048, checkpoint=config)
    with EvaluationEngine(cache_size=0, workers=2) as eng:
        resumed = eng.reduce_stream(
            _mc_source(comparator), _mc_bundle(), chunk_rows=2048,
            workers=2, checkpoint=config,
        )
    reference = run_stream(
        _mc_source(comparator), _mc_bundle(), chunk_rows=2048
    )
    _assert_states_equal(resumed.to_state(), reference.to_state())


def test_monte_carlo_stream_checkpoint_knobs(comparator, tmp_path):
    path = tmp_path / "mc.ckpt"
    with pytest.raises(ParameterError, match="checkpoint_every"):
        monte_carlo_stream(
            comparator, BASELINE, table1_distributions(), n_samples=4096,
            seed=2024, workers=1, checkpoint_every=1024,
        )
    first = monte_carlo_stream(
        comparator, BASELINE, table1_distributions(), n_samples=4096,
        seed=2024, workers=1, chunk_rows=1024,
        checkpoint=path, checkpoint_every=1024,
    )
    plain = monte_carlo_stream(
        comparator, BASELINE, table1_distributions(), n_samples=4096,
        seed=2024, workers=1, chunk_rows=1024,
    )
    assert first.summary() == plain.summary()
    np.testing.assert_array_equal(
        first.quantile_sample, plain.quantile_sample
    )
    # Seed drift against the same checkpoint is a typed, named error.
    with pytest.raises(CheckpointMismatchError, match="seed"):
        monte_carlo_stream(
            comparator, BASELINE, table1_distributions(), n_samples=4096,
            seed=2025, workers=1, chunk_rows=1024,
            checkpoint=path, checkpoint_every=1024,
        )


# ----------------------------------------------------------------------
# SIGKILL chaos: a real process murdered mid-run, resumed to bit parity
# ----------------------------------------------------------------------


_CHILD_SCRIPT = """\
import os
import sys

import numpy as np

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine.vector import (
    Checkpoint,
    MomentsReducer,
    MonteCarloChunkSource,
    ParetoReducer,
    ReservoirQuantiles,
    StreamingReduction,
    TopKReducer,
    WinCountReducer,
    extract_row,
    run_stream,
)
from repro.experiments.ext_uncertainty import distributions

ckpt_path, out_path, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
comparator = PlatformComparator.for_domain("dnn")
source = MonteCarloChunkSource(
    np.asarray(extract_row(comparator)),
    tuple(distributions()),
    2024,
    Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000),
    n,
)
bundle = StreamingReduction({
    "moments": MomentsReducer(block=4096),
    "wins": WinCountReducer(),
    "quantiles": ReservoirQuantiles(k=4096, seed=2024),
    "topk": TopKReducer(k=32),
    "pareto": ParetoReducer(),
})
merged = run_stream(
    source, bundle, chunk_rows=65536,
    checkpoint=Checkpoint(ckpt_path, every_rows=65536),
)
tmp = out_path + ".tmp"
with open(tmp, "wb") as handle:
    np.savez(handle, **merged.to_state())
os.replace(tmp, out_path)
"""


def test_sigkill_mid_run_resumes_to_bit_identical_results(tmp_path):
    script = tmp_path / "job.py"
    script.write_text(_CHILD_SCRIPT)
    ckpt_path = tmp_path / "study.ckpt"
    out_path = tmp_path / "state.npz"
    src_root = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    argv = [
        sys.executable, str(script), str(ckpt_path), str(out_path),
        str(SIGKILL_DRAWS),
    ]

    kills = 0
    for delay in FaultPlan(seed=2024).kill_delays(6, 0.05, 0.25):
        process = subprocess.Popen(
            argv, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Let the job produce at least one checkpoint flush, then
            # murder it a seeded-random beat later — mid-unit, mid-save,
            # wherever the dice land.
            deadline = time.monotonic() + 120.0
            while (
                time.monotonic() < deadline
                and process.poll() is None
                and not ckpt_path.exists()
            ):
                time.sleep(0.005)
            if process.poll() is None:
                time.sleep(delay)
            if process.poll() is None:
                os.kill(process.pid, signal.SIGKILL)
                kills += 1
        finally:
            process.wait()
        if out_path.exists():
            break
    assert kills >= 1, "every child finished before its kill fired"
    assert ckpt_path.exists(), "no checkpoint survived the kills"

    if not out_path.exists():
        # The kill budget is spent; the final resume runs to completion.
        final = subprocess.run(
            argv, env=env, capture_output=True, text=True
        )
        assert final.returncode == 0, final.stderr

    # Bit-identical to an uninterrupted in-process run of the same job:
    # moments blocks, win counters, quantile sketch, top-k, Pareto front.
    comparator = PlatformComparator.for_domain("dnn")
    source = MonteCarloChunkSource(
        np.asarray(extract_row(comparator)),
        tuple(table1_distributions()),
        2024,
        BASELINE,
        SIGKILL_DRAWS,
    )
    reference = run_stream(
        source,
        StreamingReduction({
            "moments": MomentsReducer(block=4096),
            "wins": WinCountReducer(),
            "quantiles": ReservoirQuantiles(k=4096, seed=2024),
            "topk": TopKReducer(k=32),
            "pareto": ParetoReducer(),
        }),
        chunk_rows=65536,
    )
    with np.load(out_path) as archive:
        resumed_state = {name: archive[name].copy() for name in archive.files}
    _assert_states_equal(resumed_state, reference.to_state())
