"""Tests for A2F/F2A crossover detection (with hypothesis properties)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.crossover import find_crossovers, first_crossover
from repro.errors import ParameterError


def test_simple_a2f():
    # FPGA starts above, ends below.
    crossings = find_crossovers([1, 2, 3], [10, 5, 1], [4, 4, 4])
    assert len(crossings) == 1
    assert crossings[0].kind == "A2F"
    assert 1.0 < crossings[0].x < 3.0


def test_simple_f2a():
    crossings = find_crossovers([1, 2], [1, 10], [5, 5])
    assert crossings[0].kind == "F2A"


def test_interpolation_exact_midpoint():
    # diff goes +2 -> -2: crossover exactly halfway.
    crossings = find_crossovers([0, 1], [6, 2], [4, 4])
    assert crossings[0].x == pytest.approx(0.5)


def test_no_crossover():
    assert find_crossovers([1, 2, 3], [1, 2, 3], [4, 5, 6]) == []


def test_multiple_crossovers_ordered():
    # FPGA oscillates around ASIC.
    crossings = find_crossovers([0, 1, 2, 3], [2, -2, 2, -2], [0, 0, 0, 0])
    kinds = [c.kind for c in crossings]
    assert kinds == ["A2F", "F2A", "A2F"]
    xs = [c.x for c in crossings]
    assert xs == sorted(xs)


def test_exact_zero_at_grid_point_between_signs():
    # diff = +1, 0, -1: the zero grid point is the crossover itself.
    crossings = find_crossovers([0, 1, 2], [5, 4, 3], [4, 4, 4])
    assert len(crossings) == 1
    assert crossings[0].kind == "A2F"
    assert crossings[0].x == pytest.approx(1.0)


def test_tangent_zero_is_not_a_crossover():
    # diff = 0, +1, 0, +1: the curves touch but never cross.
    assert find_crossovers([0, 1, 2, 3], [0, 1, 0, 1], [0, 0, 0, 0]) == []


def test_first_crossover_filter():
    xs, fpga, asic = [0, 1, 2, 3], [2, -2, 2, -2], [0, 0, 0, 0]
    assert first_crossover(xs, fpga, asic).kind == "A2F"
    assert first_crossover(xs, fpga, asic, kind="F2A").kind == "F2A"
    assert first_crossover([0, 1], [1, 2], [0, 0], kind="A2F") is None


def test_length_mismatch():
    with pytest.raises(ParameterError):
        find_crossovers([1, 2], [1], [1, 2])


def test_non_increasing_xs():
    with pytest.raises(ParameterError):
        find_crossovers([1, 1], [1, 2], [2, 1])


def test_short_input_no_crossovers():
    assert find_crossovers([1], [1], [2]) == []


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        min_size=2,
        max_size=30,
    )
)
def test_crossovers_lie_within_bracket(points):
    xs = list(range(len(points)))
    fpga = [p[0] for p in points]
    asic = [p[1] for p in points]
    for crossing in find_crossovers(xs, fpga, asic):
        assert xs[0] <= crossing.x <= xs[-1]
        assert 0 <= crossing.left_index < len(xs) - 1


@given(
    st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
             min_size=2, max_size=30)
)
def test_alternating_kinds(diffs):
    """Consecutive crossovers must alternate A2F/F2A."""
    xs = list(range(len(diffs)))
    fpga = diffs
    asic = [0.0] * len(diffs)
    kinds = [c.kind for c in find_crossovers(xs, fpga, asic)]
    for a, b in zip(kinds, kinds[1:]):
        assert a != b
