"""Tests for the die-yield models (with hypothesis properties)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.manufacturing.yield_model import (
    YieldModel,
    die_yield,
    murphy_yield,
    poisson_yield,
    seeds_yield,
)

areas = st.floats(min_value=1e-4, max_value=50.0, allow_nan=False)
defects = st.floats(min_value=1e-4, max_value=2.0, allow_nan=False)


def test_zero_area_yields_one():
    for model in (murphy_yield, poisson_yield, seeds_yield):
        assert model(0.0, 0.1) == pytest.approx(1.0)


def test_zero_defect_density_yields_one():
    for model in (murphy_yield, poisson_yield, seeds_yield):
        assert model(5.0, 0.0) == pytest.approx(1.0)


def test_known_murphy_value():
    # A*D0 = 1: ((1 - e^-1)/1)^2 = 0.3996.
    assert murphy_yield(10.0, 0.1) == pytest.approx(((1 - math.exp(-1)) / 1) ** 2)


def test_known_poisson_value():
    assert poisson_yield(10.0, 0.1) == pytest.approx(math.exp(-1.0))


def test_known_seeds_value():
    assert seeds_yield(10.0, 0.1) == pytest.approx(0.5)


@given(areas, defects)
def test_yields_in_unit_interval(area, d0):
    for model in (murphy_yield, poisson_yield, seeds_yield):
        y = model(area, d0)
        assert 0.0 < y <= 1.0


@given(areas, defects)
def test_model_ordering_poisson_pessimistic_seeds_optimistic(area, d0):
    """Poisson <= Murphy <= Seeds for any die (classic ordering)."""
    p = poisson_yield(area, d0)
    m = murphy_yield(area, d0)
    s = seeds_yield(area, d0)
    assert p <= m + 1e-12
    assert m <= s + 1e-12


@given(defects, st.floats(min_value=0.1, max_value=10.0), st.floats(min_value=1.01, max_value=4.0))
def test_yield_decreases_with_area(d0, area, factor):
    assert murphy_yield(area * factor, d0) < murphy_yield(area, d0)


def test_murphy_small_faults_numerically_stable():
    assert murphy_yield(1e-12, 1e-9) == 1.0


def test_die_yield_applies_line_yield():
    base = murphy_yield(1.0, 0.1)
    assert die_yield(1.0, 0.1, line_yield=0.9) == pytest.approx(base * 0.9)


def test_die_yield_model_selection():
    assert die_yield(1.0, 0.1, model="poisson") == pytest.approx(poisson_yield(1.0, 0.1))
    assert die_yield(1.0, 0.1, model=YieldModel.SEEDS) == pytest.approx(seeds_yield(1.0, 0.1))


def test_die_yield_rejects_bad_line_yield():
    with pytest.raises(ParameterError):
        die_yield(1.0, 0.1, line_yield=1.5)
    with pytest.raises(ParameterError):
        die_yield(1.0, 0.1, line_yield=0.0)


def test_yield_model_coerce_rejects_unknown():
    with pytest.raises(ParameterError, match="unknown yield model"):
        YieldModel.coerce("gaussian")


def test_yield_model_coerce_accepts_member_and_string():
    assert YieldModel.coerce(YieldModel.MURPHY) is YieldModel.MURPHY
    assert YieldModel.coerce("murphy") is YieldModel.MURPHY
