"""Tests for the experiment modules and registry."""

import pytest

from repro.errors import UnknownEntityError
from repro.experiments import fig2_motivation, fig4_num_apps, fig9_chip_lifetime
from repro.experiments.base import ExperimentReport
from repro.experiments.registry import EXPERIMENT_IDS, list_experiments, run_experiment


def test_registry_covers_every_paper_artifact():
    paper = {"fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
             "fig10", "fig11", "tables", "calibration"}
    extensions = {"ext_gpu", "ext_fleet", "ext_uncertainty"}
    assert set(EXPERIMENT_IDS) == paper | extensions


def test_list_experiments_descriptions():
    listing = dict(list_experiments())
    assert set(listing) == set(EXPERIMENT_IDS)
    assert all(listing.values())


def test_unknown_experiment():
    with pytest.raises(UnknownEntityError):
        run_experiment("fig99")


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_every_experiment_runs_and_renders(experiment_id):
    report = run_experiment(experiment_id)
    assert isinstance(report, ExperimentReport)
    assert report.experiment_id == experiment_id
    assert report.tables
    text = report.render()
    assert experiment_id in text
    assert len(text) > 100


def test_csv_export(tmp_path):
    run_experiment("fig2", csv_dir=tmp_path)
    files = list(tmp_path.glob("fig2_*.csv"))
    assert files
    assert all(f.stat().st_size > 0 for f in files)


def test_fig2_ratio_shape():
    one, ten = fig2_motivation.ratios()
    assert one > 1.0, "single-app FPGA must be worse"
    assert ten < 1.0, "ten-app FPGA must be better"


def test_fig4_crypto_crosses_immediately():
    _, crossings = fig4_num_apps.domain_sweep("crypto")
    a2f = next(c for c in crossings if c.kind == "A2F")
    assert a2f.x <= 2.0


def test_fig9_jumps_at_chip_lifetime_multiples():
    rows = fig9_chip_lifetime.domain_series("dnn")
    jumps = fig9_chip_lifetime.jump_years(rows)
    assert 16 in jumps and 31 in jumps
    assert len(jumps) == 2  # 40-year horizon, 15-year lifetime


def test_fig9_asic_has_no_generation_jumps():
    rows = fig9_chip_lifetime.domain_series("dnn")
    # ASIC totals grow smoothly: every yearly increment within 3x of median.
    increments = [
        b["asic_total_kg"] - a["asic_total_kg"] for a, b in zip(rows, rows[1:])
    ]
    median = sorted(increments)[len(increments) // 2]
    assert all(inc < 3.0 * median for inc in increments)


def test_tables_experiment_defaults_in_range():
    report = run_experiment("tables")
    rows = report.tables["table1_parameters"]
    assert all(row["in_range"] for row in rows)


def test_report_add_helpers():
    report = ExperimentReport("x", "T", "D")
    report.add_table("t", [{"a": 1}])
    report.add_chart("chart")
    report.add_note("note")
    text = report.render()
    assert "chart" in text and "note" in text and "T" in text
