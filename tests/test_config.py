"""Tests for the Table 1 parameter set and suite building."""

import pytest

from repro.config import TABLE1_RANGES, Parameters, default_parameters
from repro.core.suite import ModelSuite
from repro.errors import ConfigError, ParameterError


def test_defaults_validate():
    default_parameters().validate()


def test_table1_ranges_match_paper():
    assert TABLE1_RANGES["recycle_credit_mtco2e_per_ton"].low == 7.65
    assert TABLE1_RANGES["recycle_credit_mtco2e_per_ton"].high == 29.83
    assert TABLE1_RANGES["discard_mtco2e_per_ton"].high == 2.08
    assert TABLE1_RANGES["design_energy_gwh"].low == 2.0
    assert TABLE1_RANGES["design_energy_gwh"].high == 7.3
    assert TABLE1_RANGES["design_carbon_intensity_g_per_kwh"].high == 700.0
    assert TABLE1_RANGES["frontend_months"].low == 1.5
    assert TABLE1_RANGES["backend_months"].high == 1.5
    assert TABLE1_RANGES["project_years"].high == 3.0


def test_validate_rejects_out_of_range():
    params = default_parameters().with_overrides(frontend_months=6.0)
    with pytest.raises(ParameterError, match="frontend_months"):
        params.validate()


def test_build_suite_wires_parameters():
    params = default_parameters().with_overrides(
        recycled_material_fraction=0.5,
        duty_cycle=0.7,
        eol_recycled_fraction=0.9,
    )
    suite = params.build_suite()
    assert isinstance(suite, ModelSuite)
    assert suite.manufacturing.recycled_fraction == 0.5
    assert suite.operation.profile.duty_cycle == 0.7
    assert suite.eol.recycled_fraction == 0.9
    assert suite.asic_effort.per_application_hours() == 0.0


def test_build_suite_asic_software_flow():
    suite = default_parameters().with_overrides(asic_software_months=1.0).build_suite()
    assert suite.asic_effort.per_application_hours() > 0.0


def test_json_round_trip(tmp_path):
    params = default_parameters().with_overrides(duty_cycle=0.42, pue=1.5)
    path = tmp_path / "params.json"
    params.to_json(path)
    loaded = Parameters.from_json(path)
    assert loaded == params


def test_json_string_round_trip():
    params = default_parameters()
    assert Parameters.from_json(params.to_json()) == params


def test_from_json_rejects_malformed():
    with pytest.raises(ConfigError):
        Parameters.from_json("{not json")


def test_from_json_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown parameter"):
        Parameters.from_json('{"warp_factor": 9}')


def test_from_json_rejects_non_object():
    with pytest.raises(ConfigError):
        Parameters.from_json("[1, 2, 3]")


def test_with_overrides_is_pure():
    params = default_parameters()
    changed = params.with_overrides(pue=2.0)
    assert params.pue != 2.0
    assert changed.pue == 2.0


def test_suite_from_parameters_produces_same_results_as_default():
    """Parameters() defaults must reproduce ModelSuite.default() behaviour."""
    from repro.core.comparison import compare_domain
    from repro.core.scenario import Scenario

    scenario = Scenario(num_apps=2, app_lifetime_years=1.0, volume=1000)
    via_params = compare_domain("dnn", scenario, default_parameters().build_suite())
    via_default = compare_domain("dnn", scenario, ModelSuite.default())
    assert via_params.ratio == pytest.approx(via_default.ratio)
