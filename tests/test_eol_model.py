"""Tests for the Eq. (6) end-of-life model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.warm import get_material
from repro.eol.model import EolModel
from repro.errors import ParameterError


def test_zero_mass_zero_footprint():
    assert EolModel().per_chip_kg(0.0) == 0.0


def test_equation_six_literal():
    """C_EOL = (1-d)*C_dis - d*C_recycle (+ transport), per kg."""
    model = EolModel(recycled_fraction=0.4, material="copper", transport_kg_per_kg=0.0)
    factors = get_material("copper")
    mass_g = 500.0
    expected = (
        0.6 * factors.discard_kg_per_kg - 0.4 * factors.recycle_credit_kg_per_kg
    ) * 0.5
    assert model.per_chip_kg(mass_g) == pytest.approx(expected)


def test_full_recycling_is_net_credit():
    model = EolModel(recycled_fraction=1.0, transport_kg_per_kg=0.0)
    assert model.per_chip_kg(100.0) < 0.0


def test_no_recycling_is_pure_discard():
    model = EolModel(recycled_fraction=0.0, transport_kg_per_kg=0.0)
    result = model.assess_chip(100.0)
    assert result.recycle_credit_kg == 0.0
    assert result.total_kg == pytest.approx(result.discard_kg)
    assert result.total_kg > 0.0


@given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_more_recycling_never_increases_footprint(delta):
    base = EolModel(recycled_fraction=0.0).per_chip_kg(100.0)
    assert EolModel(recycled_fraction=delta).per_chip_kg(100.0) <= base


@given(st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False))
def test_footprint_linear_in_mass(mass_g):
    model = EolModel()
    one = model.per_chip_kg(1.0)
    assert model.per_chip_kg(mass_g) == pytest.approx(one * mass_g, abs=1e-9)


def test_transport_always_charged():
    with_t = EolModel(recycled_fraction=1.0, transport_kg_per_kg=0.5)
    without = EolModel(recycled_fraction=1.0, transport_kg_per_kg=0.0)
    assert with_t.per_chip_kg(1000.0) == pytest.approx(
        without.per_chip_kg(1000.0) + 0.5
    )


def test_chip_scale_eol_is_small():
    """Per-chip EOL is grams-scale mass -> sub-kg CFP (paper Sec. 4.3)."""
    assert abs(EolModel().per_chip_kg(30.0)) < 1.0


def test_rejects_negative_mass():
    with pytest.raises(ParameterError):
        EolModel().assess_chip(-1.0)


def test_rejects_bad_fraction():
    with pytest.raises(ParameterError):
        EolModel(recycled_fraction=1.2)


def test_material_instance_accepted():
    factors = get_material("aluminum")
    model = EolModel(material=factors)
    assert model.assess_chip(10.0).mass_g == 10.0
