"""Streaming reduction pipeline: reducers, chunk execution, parity.

The contract under test (see ``repro/engine/vector/reducers.py``):
streamed reductions are **bit-identical across chunk sizes, worker
counts and the 1-chunk degenerate case**, match the materialized path
exactly for integer counters (win probability, non-finite draws),
within ``rtol <= 1e-12`` for moments, and within documented sketch
tolerance (exact while the sketch holds every finite value) for
quantiles — all while never materializing more than one chunk of rows.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis.dse import explore_batch
from repro.analysis.montecarlo import (
    MonteCarloResult,
    ParameterDistribution,
    monte_carlo_batch,
    monte_carlo_reduction,
    monte_carlo_stream,
    quantiles_from_sorted,
)
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.engine import EvaluationEngine
from repro.engine.vector import (
    ArrayChunkSource,
    BatchResult,
    HistogramReducer,
    MomentsReducer,
    MonteCarloChunkSource,
    ParameterBatch,
    ParetoReducer,
    ReservoirQuantiles,
    ScenarioBatch,
    SharedArrayChunkSource,
    StreamingReduction,
    TopKReducer,
    WinCountReducer,
    extract_row,
    run_stream,
)
from repro.engine.vector import params as pcols
from repro.errors import ParameterError
from repro.experiments.ext_uncertainty import distributions as table1_distributions
from repro.operation.model import OperationModel
from repro.units import g_per_kwh_to_kg_per_kwh

BASELINE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)


def _fake_result(
    ratios: np.ndarray,
    winners: "np.ndarray | None" = None,
    fpga: "np.ndarray | None" = None,
    asic: "np.ndarray | None" = None,
) -> BatchResult:
    """A minimal BatchResult carrying only the columns reducers read."""
    n = ratios.shape[0]
    zeros = np.zeros(n)
    ints = np.zeros(n, dtype=np.int64)
    return BatchResult(
        ratios=np.asarray(ratios, dtype=np.float64),
        winners=(
            winners if winners is not None else np.full(n, "asic", dtype="<U4")
        ),
        fpga_totals=zeros if fpga is None else np.asarray(fpga, float),
        asic_totals=zeros if asic is None else np.asarray(asic, float),
        fpga_components={},
        asic_components={},
        fpga_per_chip_embodied_kg=zeros,
        asic_per_chip_embodied_kg=zeros,
        n_fpga=ints,
        fpga_generations=ints,
        asic_generations=ints,
        num_apps=ints,
    )


def _chunked(reducer, values: np.ndarray, chunk: int, **kwargs):
    """Feed ``values`` through a fresh reducer in ``chunk``-row pieces."""
    fresh = reducer.fresh()
    for start in range(0, values.shape[0], chunk):
        fresh.update(
            _fake_result(values[start : start + chunk], **kwargs), start
        )
    return fresh


# ----------------------------------------------------------------------
# Reducer units
# ----------------------------------------------------------------------


def test_moments_match_numpy_and_count_non_finite():
    rng = np.random.default_rng(11)
    values = rng.normal(1.5, 0.4, 5000)
    values[::97] = np.inf
    values[::131] = np.nan
    moments = _chunked(MomentsReducer(block=256), values, 512).moments()
    finite = values[np.isfinite(values)]
    assert moments["n"] == 5000
    assert moments["n_finite"] == finite.size
    np.testing.assert_allclose(moments["mean"], finite.mean(), rtol=1e-12)
    np.testing.assert_allclose(moments["std"], finite.std(), rtol=1e-9)
    assert moments["min"] == finite.min() and moments["max"] == finite.max()


def test_moments_variance_survives_large_offset_small_spread():
    # E[x^2]-E[x]^2 would lose all significant digits here; the
    # per-block M2 + Chan combine must not.
    rng = np.random.default_rng(2)
    values = 1.0e8 + rng.normal(0.0, 1.0e-2, 8192)
    moments = _chunked(MomentsReducer(block=512), values, 1024).moments()
    np.testing.assert_allclose(moments["var"], values.var(), rtol=1e-6)
    np.testing.assert_allclose(moments["std"], values.std(), rtol=1e-6)
    assert moments["var"] > 0.0


def test_moments_bit_identical_across_chunkings_and_merge_order():
    rng = np.random.default_rng(7)
    values = rng.normal(size=4096)
    one = _chunked(MomentsReducer(block=128), values, 4096).moments()
    for chunk in (128, 256, 1024):
        assert _chunked(MomentsReducer(block=128), values, chunk).moments() == one
    # merging partials in any order reaches the same state
    proto = MomentsReducer(block=128)
    a = _chunked(proto, values[:1024], 256)
    b = proto.fresh()
    for start in range(1024, 4096, 512):
        b.update(_fake_result(values[start : start + 512]), start)
    b.merge(a)
    assert b.moments() == one


def test_moments_rejects_unaligned_and_overlapping_chunks():
    reducer = MomentsReducer(block=64)
    reducer.update(_fake_result(np.ones(64)), 0)
    with pytest.raises(ParameterError):
        reducer.update(_fake_result(np.ones(64)), 32)  # unaligned
    with pytest.raises(ParameterError):
        reducer.update(_fake_result(np.ones(64)), 0)  # block reduced twice
    other = reducer.fresh()
    other.update(_fake_result(np.ones(64)), 0)
    with pytest.raises(ParameterError):
        reducer.merge(other)


def test_win_counter_matches_materialized_convention():
    rng = np.random.default_rng(3)
    ratios = rng.normal(1.0, 0.5, 2000)
    ratios[::53] = np.inf
    winners = np.where(rng.random(2000) < 0.3, "fpga", "asic").astype("<U4")
    wins = _chunked(WinCountReducer(), ratios, 333, winners=winners)
    reference = MonteCarloResult(
        ratios=ratios, samples=({},) * 2000, winners=winners
    )
    assert wins.fpga_win_probability == reference.fpga_win_probability
    moments = _chunked(MomentsReducer(block=1), ratios, 333)
    assert moments.n_total - moments.n_finite == reference.n_non_finite


def test_histogram_matches_numpy_with_out_of_range_tallies():
    rng = np.random.default_rng(5)
    values = rng.normal(1.0, 1.0, 3000)
    values[:7] = np.nan
    hist = _chunked(HistogramReducer(0.0, 2.0, bins=32), values, 700)
    finite = values[np.isfinite(values)]
    inside = finite[(finite >= 0.0) & (finite <= 2.0)]
    np.testing.assert_array_equal(
        hist.counts, np.histogram(inside, bins=32, range=(0.0, 2.0))[0]
    )
    assert hist.non_finite == 7
    assert hist.underflow == int(np.count_nonzero(finite < 0.0))
    assert hist.overflow == int(np.count_nonzero(finite > 2.0))
    assert hist.counts.sum() + hist.underflow + hist.overflow == finite.size


def test_reservoir_exact_below_k_and_deterministic_above():
    rng = np.random.default_rng(9)
    values = rng.normal(size=5000)
    exact = _chunked(ReservoirQuantiles(k=8192, seed=1), values, 611)
    assert exact.exact
    qs = (0.05, 0.5, 0.95)
    expected = {float(q): float(v) for q, v in zip(qs, np.quantile(values, qs))}
    assert exact.quantiles(qs) == expected

    sketch_a = _chunked(ReservoirQuantiles(k=512, seed=1), values, 613)
    sketch_b = _chunked(ReservoirQuantiles(k=512, seed=1), values, 2048)
    assert not sketch_a.exact
    np.testing.assert_array_equal(sketch_a.sample(), sketch_b.sample())
    # ~sqrt(q(1-q)/k) rank error: generous 5-sigma bound in value space
    for q, estimate in sketch_a.quantiles(qs).items():
        rank_sigma = np.sqrt(q * (1 - q) / 512)
        lo, hi = np.quantile(values, [max(0.0, q - 5 * rank_sigma),
                                      min(1.0, q + 5 * rank_sigma)])
        assert lo <= estimate <= hi


def test_topk_and_pareto_match_exhaustive_reference():
    rng = np.random.default_rng(21)
    n = 500
    fpga = rng.uniform(1.0, 10.0, n)
    asic = rng.uniform(1.0, 10.0, n)
    asic[100:110] = asic[90:100]  # inject exact coordinate duplicates
    fpga[100:110] = fpga[90:100]
    ratios = fpga / asic
    top = TopKReducer(k=10)
    front = ParetoReducer()
    for chunk, reducer in ((64, top), (117, front)):
        for start in range(0, n, chunk):
            reducer.update(
                _fake_result(
                    ratios[start : start + chunk],
                    fpga=fpga[start : start + chunk],
                    asic=asic[start : start + chunk],
                ),
                start,
            )
    best = np.minimum(fpga, asic)
    expected_top = sorted(range(n), key=lambda i: (best[i], i))[:10]
    assert [row["index"] for row in top.rows()] == expected_top

    kept = {row["index"] for row in front.rows()}
    for i in range(n):
        dominated = bool(np.any(
            (fpga <= fpga[i]) & (asic <= asic[i])
            & ((fpga < fpga[i]) | (asic < asic[i]))
        ))
        assert (i not in kept) == dominated, i


def test_pareto_keeps_nan_rows_like_materialized_dominates():
    from repro.analysis.dse import _dominates

    fpga = np.array([1.0, 2.0, np.nan, 3.0, 0.5])
    asic = np.array([2.0, 1.0, 1.5, np.nan, 3.0])
    front = ParetoReducer()
    front.update(_fake_result(fpga / asic, fpga=fpga, asic=asic), 0)
    kept = {row["index"] for row in front.rows()}
    for i in range(5):
        dominated = any(
            _dominates((fpga[j], asic[j]), (fpga[i], asic[i]))
            for j in range(5) if j != i
        )
        assert (i not in kept) == dominated, i
    assert {2, 3} <= kept  # NaN rows can never be dominated


def test_quantiles_from_sorted_is_bit_identical_to_numpy():
    rng = np.random.default_rng(13)
    for n in (1, 2, 5, 1000):
        values = rng.normal(size=n)
        qs = np.concatenate([[0.0, 1.0], rng.random(17)])
        np.testing.assert_array_equal(
            quantiles_from_sorted(np.sort(values), qs),
            np.quantile(values, qs),
        )
    with pytest.raises(ValueError):
        quantiles_from_sorted(np.zeros(3), [1.5])


# ----------------------------------------------------------------------
# End-to-end streaming Monte-Carlo
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def comparator(suite):
    return PlatformComparator.for_domain("dnn", suite)


@pytest.fixture(scope="module")
def engine():
    with EvaluationEngine(cache_size=0) as eng:
        yield eng


N_DRAWS = 20_000


@pytest.fixture(scope="module")
def materialized(comparator, engine):
    return monte_carlo_batch(
        comparator, BASELINE, table1_distributions(), n_samples=N_DRAWS,
        seed=2024, engine=engine,
    )


def _small_reduction():
    """A reduction sized so small studies exercise multi-chunk paths."""
    return monte_carlo_reduction(seed=2024, quantile_k=N_DRAWS, block=512)


def test_streaming_matches_materialized_across_chunk_sizes(
    comparator, engine, materialized
):
    reference = None
    for chunk_rows in (2048, 7168, N_DRAWS):  # N_DRAWS = 1-chunk degenerate
        stream = monte_carlo_batch(
            comparator, BASELINE, table1_distributions(), n_samples=N_DRAWS,
            seed=2024, engine=engine, reduce=_small_reduction(),
            chunk_rows=chunk_rows, workers=1,
        )
        # exact integer counters
        assert stream.n_samples == materialized.n_samples
        assert stream.fpga_win_probability == materialized.fpga_win_probability
        assert stream.n_non_finite == materialized.n_non_finite
        # moments within 1e-12 of the materialized reference
        np.testing.assert_allclose(
            stream.ratio_mean, materialized.summary()["ratio_mean"],
            rtol=1e-12, atol=0.0,
        )
        # the sketch holds every draw here -> quantiles track the
        # materialized run within the fused tier's parity bound (the
        # default streaming tier reassociates scalar algebra; the
        # chain-tier test below keeps the bitwise guarantee)
        assert stream.quantile_exact
        sq, mq = stream.quantiles(), materialized.quantiles()
        assert set(sq) == set(mq)
        np.testing.assert_allclose(
            [sq[q] for q in sorted(sq)], [mq[q] for q in sorted(mq)],
            rtol=1e-12, atol=0.0,
        )
        assert set(stream.summary()) == set(materialized.summary())
        # bit-identical summaries for every chunking
        if reference is None:
            reference = stream
        else:
            assert stream.summary() == reference.summary()
            np.testing.assert_array_equal(
                stream.quantile_sample, reference.quantile_sample
            )


def test_chain_tier_streaming_matches_materialized_bitwise(
    comparator, materialized
):
    """``kernel_tier="numpy"`` preserves the pre-fused bitwise contract."""
    with EvaluationEngine(cache_size=0, kernel_tier="numpy") as eng:
        stream = monte_carlo_batch(
            comparator, BASELINE, table1_distributions(), n_samples=N_DRAWS,
            seed=2024, engine=eng, reduce=_small_reduction(),
            chunk_rows=2048, workers=1,
        )
    assert stream.n_samples == materialized.n_samples
    assert stream.fpga_win_probability == materialized.fpga_win_probability
    assert stream.quantile_exact
    assert stream.quantiles() == materialized.quantiles()


def test_streaming_chunk_source_bit_reproduces_sequential_draws(comparator):
    dists = tuple(table1_distributions())
    source = MonteCarloChunkSource(
        np.asarray(extract_row(comparator)), dists, 2024, BASELINE, 1000
    )
    rng = np.random.default_rng(2024)
    full = rng.random((1000, len(dists)))
    for start, stop in ((0, 300), (300, 301), (301, 1000)):
        params, batch = source.chunk(start, stop)
        assert batch.size == stop - start
        for j, dist in enumerate(dists):
            if dist.name == "duty_cycle":
                expected = dist.column_from_uniform(full[start:stop, j])
                np.testing.assert_array_equal(
                    params.col(pcols.OP_DUTY), expected
                )


def test_streaming_multiworker_bit_parity(comparator, materialized):
    with EvaluationEngine(cache_size=0, workers=2) as eng:
        stream = monte_carlo_stream(
            comparator, BASELINE, table1_distributions(), n_samples=N_DRAWS,
            seed=2024, engine=eng, chunk_rows=4096, quantile_k=N_DRAWS,
        )
        sequential = monte_carlo_stream(
            comparator, BASELINE, table1_distributions(), n_samples=N_DRAWS,
            seed=2024, engine=eng, chunk_rows=4096, workers=1,
            quantile_k=N_DRAWS,
        )
    assert stream.summary() == sequential.summary()
    np.testing.assert_array_equal(
        stream.quantile_sample, sequential.quantile_sample
    )
    assert stream.fpga_win_probability == materialized.fpga_win_probability


def test_streaming_falls_back_sequential_for_unpicklable_study(comparator):
    def _apply(comp, value):  # local function: unpicklable for spawn
        suite = comp.suite.with_overrides(
            operation=OperationModel(
                energy_source=value, profile=comp.suite.operation.profile
            )
        )
        import dataclasses

        return dataclasses.replace(comp, suite=suite)

    dists = [
        ParameterDistribution(
            "use_intensity", 30.0, 700.0, _apply, kind="loguniform",
            apply_column=lambda params, values: params.set_col(
                pcols.OP_CI, g_per_kwh_to_kg_per_kwh(values)
            ),
        )
    ]
    with EvaluationEngine(cache_size=0, workers=2) as eng:
        stream = monte_carlo_stream(
            comparator, BASELINE, dists, n_samples=4096, seed=7, engine=eng,
            chunk_rows=1024,
        )
        reference = monte_carlo_stream(
            comparator, BASELINE, dists, n_samples=4096, seed=7, engine=eng,
            chunk_rows=1024, workers=1,
        )
    assert stream.summary() == reference.summary()


def test_streaming_validates_reduction_members_and_chunk_rows(
    comparator, engine
):
    incomplete = StreamingReduction({"histogram": HistogramReducer(0.0, 2.0)})
    with pytest.raises(ParameterError, match="missing members"):
        monte_carlo_batch(
            comparator, BASELINE, table1_distributions(), n_samples=64,
            engine=engine, reduce=incomplete,
        )
    with pytest.raises(ParameterError, match="missing members"):
        explore_batch("dnn", BASELINE, GRID, engine=engine, reduce=incomplete)
    with pytest.raises(ParameterError, match="chunk_rows"):
        monte_carlo_stream(
            comparator, BASELINE, table1_distributions(), n_samples=64,
            engine=engine, chunk_rows=0, workers=1,
        )


def test_streaming_requires_columnar_path(comparator, engine):
    ragged = Scenario(
        num_apps=2, app_lifetime_years=(1.0, 2.0), volume=1000
    )
    with pytest.raises(ParameterError, match="kernel-covered"):
        monte_carlo_stream(
            comparator, ragged, table1_distributions(), n_samples=64,
            engine=engine,
        )
    no_column = [
        ParameterDistribution("x", 0.1, 0.9, lambda c, v: c)  # no apply_column
    ]
    with pytest.raises(ParameterError, match="apply_column"):
        monte_carlo_stream(
            comparator, BASELINE, no_column, n_samples=64, engine=engine
        )
    with EvaluationEngine(vectorize=False) as scalar_eng:
        with pytest.raises(ParameterError, match="vectorize"):
            monte_carlo_stream(
                comparator, BASELINE, table1_distributions(), n_samples=64,
                engine=scalar_eng,
            )


# ----------------------------------------------------------------------
# Engine reduce= mode and shared-memory workers
# ----------------------------------------------------------------------


def _perturbed_param_batch(comparator, n: int) -> tuple[ParameterBatch, ScenarioBatch]:
    params = ParameterBatch.from_comparator(comparator, n)
    rng = np.random.default_rng(17)
    params.set_col(pcols.OP_CI, rng.uniform(0.03, 0.7, n))
    params.set_col(pcols.MFG_RHO, rng.uniform(0.0, 1.0, n))
    return params, ScenarioBatch.tile(BASELINE, n)


def test_evaluate_param_batch_reduce_mode_matches_materialized(comparator):
    n = 8192
    params, batch = _perturbed_param_batch(comparator, n)
    with EvaluationEngine(cache_size=0) as eng:
        full = eng.evaluate_param_batch(params, batch)
        reduction = eng.evaluate_param_batch(
            params, batch,
            reduce=monte_carlo_reduction(seed=0, quantile_k=n, block=512),
            chunk_rows=1024, stream_workers=1,
        )
    assert isinstance(reduction, StreamingReduction)
    moments = reduction["moments"].moments()
    finite = full.ratios[np.isfinite(full.ratios)]
    assert moments["n"] == n and moments["n_finite"] == finite.size
    np.testing.assert_allclose(moments["mean"], finite.mean(), rtol=1e-12)
    wins = reduction["wins"]
    assert wins.fpga_wins == int(np.count_nonzero(full.winners == "fpga"))


def test_shared_memory_workers_match_sequential(comparator):
    n = 8192
    params, batch = _perturbed_param_batch(comparator, n)
    prototype = monte_carlo_reduction(seed=0, quantile_k=n, block=512)
    with EvaluationEngine(cache_size=0) as eng:
        parallel = eng.evaluate_param_batch(
            params, batch, reduce=prototype.fresh(), chunk_rows=1024,
            stream_workers=2,
        )
        sequential = eng.evaluate_param_batch(
            params, batch, reduce=prototype.fresh(), chunk_rows=1024,
            stream_workers=1,
        )
    assert parallel["moments"].moments() == sequential["moments"].moments()
    assert parallel["wins"].fpga_wins == sequential["wins"].fpga_wins
    np.testing.assert_array_equal(
        parallel["quantiles"].sample(), sequential["quantiles"].sample()
    )


def test_shared_chunk_source_round_trips_columns(comparator):
    n = 1024
    params, batch = _perturbed_param_batch(comparator, n)
    source = SharedArrayChunkSource.pack(params, batch)
    try:
        chunk_params, chunk_batch = source.chunk(100, 612)
        reference_p, reference_b = ArrayChunkSource(params, batch).chunk(100, 612)
        np.testing.assert_array_equal(
            chunk_params.col(pcols.OP_CI), reference_p.col(pcols.OP_CI)
        )
        # broadcast columns ride inline, untouched by the shared block
        np.testing.assert_array_equal(
            chunk_params.col(pcols.F_AREA), reference_p.col(pcols.F_AREA)
        )
        np.testing.assert_array_equal(
            chunk_batch.num_apps, reference_b.num_apps
        )
        assert chunk_batch.all_covered
    finally:
        source.close()


def test_reduce_mode_rejects_uncovered_rows(comparator, engine):
    ragged = Scenario(num_apps=2, app_lifetime_years=(1.0, 3.0), volume=10)
    params = ParameterBatch.from_comparators([comparator] * 4)
    batch = ScenarioBatch.from_scenarios((ragged,) * 4)
    with pytest.raises(ParameterError, match="covered"):
        engine.evaluate_param_batch(
            params, batch, reduce=monte_carlo_reduction(seed=0)
        )


# ----------------------------------------------------------------------
# Streaming DSE
# ----------------------------------------------------------------------


GRID = {
    "fab_energy_source": ["taiwan", "usa", "europe"],
    "recycled_material_fraction": [0.0, 0.3, 0.6, 0.9],
    "duty_cycle": [0.2, 0.5, 0.8],
}


def test_explore_batch_streaming_matches_materialized(engine):
    materialized = explore_batch("dnn", BASELINE, GRID, engine=engine)
    streamed = explore_batch(
        "dnn", BASELINE, GRID, engine=engine, reduce=True, chunk_rows=7,
        top_k=5, workers=1,
    )
    assert streamed.streamed and not materialized.streamed
    assert streamed.best().overrides == materialized.best().overrides
    np.testing.assert_allclose(
        streamed.best().ratio, materialized.best().ratio, rtol=1e-12
    )
    front_m = {tuple(sorted(p.overrides.items())): p
               for p in materialized.pareto_front()}
    front_s = {tuple(sorted(p.overrides.items())): p
               for p in streamed.pareto_front()}
    assert front_m.keys() == front_s.keys()
    for key, point in front_s.items():
        np.testing.assert_allclose(
            point.fpga_total_kg, front_m[key].fpga_total_kg, rtol=1e-12
        )
    # kept points: top-k united with the front, deduplicated
    assert len(streamed.points) <= 5 + len(front_s)
    # every kept ranked point matches its materialized twin
    ranked = {tuple(sorted(p.overrides.items())): p
              for p in materialized.points}
    for point in streamed.points:
        twin = ranked[tuple(sorted(point.overrides.items()))]
        np.testing.assert_allclose(point.ratio, twin.ratio, rtol=1e-12)


def test_explore_batch_streaming_rejects_uncovered_scenario(engine):
    ragged = Scenario(num_apps=2, app_lifetime_years=(1.0, 2.0), volume=10)
    with pytest.raises(ParameterError, match="kernel-covered"):
        explore_batch("dnn", ragged, GRID, engine=engine, reduce=True)


# ----------------------------------------------------------------------
# Pool hygiene
# ----------------------------------------------------------------------


def test_stream_worker_resolution_validates_and_caps():
    from repro.engine import MAX_STREAM_WORKERS

    with EvaluationEngine() as eng:
        with pytest.raises(ParameterError):
            eng.stream_workers(0)
        assert eng.stream_workers(3) == 3
        assert eng.stream_workers(64) == MAX_STREAM_WORKERS
    with EvaluationEngine(workers=32) as pinned:
        # the engine pin obeys the streaming hard cap too
        assert pinned.stream_workers() == MAX_STREAM_WORKERS


def test_engine_pools_are_pinned_to_spawn():
    with EvaluationEngine(workers=2) as eng:
        assert eng._pool_get()._mp_context.get_start_method() == "spawn"
        assert (
            eng._stream_pool_get(2)._mp_context.get_start_method() == "spawn"
        )


def test_broken_stream_pool_degrades_then_recovers(comparator):
    import os

    with EvaluationEngine(cache_size=0, workers=2) as eng:
        pool = eng._stream_pool_get(2)
        with pytest.raises(Exception):  # kill a worker -> pool breaks
            pool.submit(os._exit, 1).result()
        assert pool._broken
        # the next run must not crash: the engine rebuilds the broken
        # pool up-front, and run_stream's submit sits inside its
        # sequential-fallback try for breakage mid-run
        result = monte_carlo_stream(
            comparator, BASELINE, table1_distributions(), n_samples=2048,
            seed=5, engine=eng, chunk_rows=512,
        )
        assert result.n_samples == 2048
        fresh = eng._stream_pool_get(2)
        assert fresh is not pool and not fresh._broken


class _KamikazeChunkSource:
    """Chunk-source wrapper that SIGKILLs the worker asked for one span.

    Module-level so spawn can pickle it to the pool workers.  The
    parent-pid guard matters twice: the parent's own sequential
    *recovery* pass replays the same ``chunk(kill_start, ...)`` call and
    must survive it, and the probe pickle in ``run_stream`` must not
    detonate anything.  SIGKILL (not an exception, not ``sys.exit``) is
    the point — the worker gets no chance to answer, exactly like an
    OOM kill.
    """

    def __init__(self, inner, kill_start: int, parent_pid: int) -> None:
        self.inner = inner
        self.n = inner.n
        self.kill_start = kill_start
        self.parent_pid = parent_pid

    def chunk(self, start: int, stop: int):
        import os
        import signal

        if start == self.kill_start and os.getpid() != self.parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.chunk(start, stop)


def test_run_stream_recovers_sigkilled_worker_bit_identically(comparator):
    """A worker dying mid-span must cost a recompute, never a result.

    Regression for the streaming fault-recovery path: SIGKILL one pool
    worker at the first chunk of its span, assert the merged reduction
    is bit-identical to the sequential run and that the recovery
    counters fired.
    """
    import os

    from repro.engine.vector.streaming import STREAM_STATS

    dists = tuple(table1_distributions())
    n, chunk = 8192, 1024
    inner = MonteCarloChunkSource(
        np.asarray(extract_row(comparator)), dists, 2024, BASELINE, n
    )
    prototype = monte_carlo_reduction(seed=2024, quantile_k=n, block=512)
    sequential = run_stream(
        inner, prototype.fresh(), chunk_rows=chunk, workers=1
    )

    # Spans for n=8192 / chunk=1024 / 2 workers: [0,4096) and
    # [4096,8192) — kill the worker that picks up the second span.
    killer = _KamikazeChunkSource(inner, 4096, os.getpid())
    before = STREAM_STATS.snapshot()
    with EvaluationEngine(cache_size=0, workers=2) as eng:
        recovered = run_stream(
            killer, prototype.fresh(), chunk_rows=chunk, workers=2,
            pool=eng._stream_pool_get(2),
        )
    after = STREAM_STATS.snapshot()

    assert after["broken_pool_recoveries"] == (
        before["broken_pool_recoveries"] + 1
    )
    assert after["spans_recovered"] >= before["spans_recovered"] + 1
    assert recovered["moments"].moments() == sequential["moments"].moments()
    assert recovered["wins"].fpga_wins == sequential["wins"].fpga_wins
    np.testing.assert_array_equal(
        recovered["quantiles"].sample(), sequential["quantiles"].sample()
    )


def test_engine_close_is_idempotent_under_concurrent_callers(comparator):
    eng = EvaluationEngine(cache_size=0, workers=2)
    # start both pools so close() has real work to race over
    eng._pool_get()
    eng._stream_pool_get(2)
    errors: list[BaseException] = []

    def hammer() -> None:
        try:
            for _ in range(20):
                eng.close()
        except BaseException as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert eng._pool is None and eng._stream_pool is None
    # the engine stays usable: pools restart lazily on demand
    result = monte_carlo_stream(
        comparator, BASELINE, table1_distributions(), n_samples=1024,
        seed=3, engine=eng, chunk_rows=512, workers=1,
    )
    assert result.n_samples == 1024
    eng.close()
    eng.close()  # double close after use is a no-op too
