"""Tests for the Eq. (2) FPGA lifecycle model."""

import pytest

from repro.core.fpga_model import FpgaLifecycleModel
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.fpga import FpgaDevice


@pytest.fixture
def model(simple_fpga, suite):
    return FpgaLifecycleModel(device=simple_fpga, suite=suite)


def test_embodied_paid_once_across_apps(model):
    one = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=1000))
    five = model.assess(Scenario(num_apps=5, app_lifetime_years=1.0, volume=1000))
    assert five.footprint.manufacturing == pytest.approx(one.footprint.manufacturing)
    assert five.footprint.design == pytest.approx(one.footprint.design)
    assert five.footprint.packaging == pytest.approx(one.footprint.packaging)


def test_operational_scales_with_apps(model):
    one = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=1000))
    five = model.assess(Scenario(num_apps=5, app_lifetime_years=1.0, volume=1000))
    assert five.footprint.operational == pytest.approx(5 * one.footprint.operational)


def test_appdev_recurs_per_application(model):
    one = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=1000))
    five = model.assess(Scenario(num_apps=5, app_lifetime_years=1.0, volume=1000))
    assert five.footprint.appdev == pytest.approx(5 * one.footprint.appdev)
    assert one.footprint.appdev > 0.0


def test_heterogeneous_lifetimes_sum(model):
    hetero = model.assess(Scenario(num_apps=2, app_lifetime_years=[1.0, 3.0], volume=1000))
    uniform = model.assess(Scenario(num_apps=2, app_lifetime_years=2.0, volume=1000))
    assert hetero.footprint.operational == pytest.approx(uniform.footprint.operational)


def test_manufacturing_scales_with_volume(model):
    small = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=1000))
    large = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=2000))
    assert large.footprint.manufacturing == pytest.approx(
        2 * small.footprint.manufacturing
    )
    # Design does not scale with volume.
    assert large.footprint.design == pytest.approx(small.footprint.design)


def test_generations_only_with_enforcement(model):
    long_run = Scenario(num_apps=20, app_lifetime_years=1.0, volume=10)
    assert model.chip_generations(long_run) == 1
    enforced = Scenario(
        num_apps=20, app_lifetime_years=1.0, volume=10, enforce_chip_lifetime=True
    )
    assert model.chip_generations(enforced) == 2  # 20 y / 15 y lifetime


def test_generation_boundary_exact(model):
    at_limit = Scenario(
        num_apps=15, app_lifetime_years=1.0, volume=10, enforce_chip_lifetime=True
    )
    assert model.chip_generations(at_limit) == 1
    past = Scenario(
        num_apps=16, app_lifetime_years=1.0, volume=10, enforce_chip_lifetime=True
    )
    assert model.chip_generations(past) == 2


def test_generations_multiply_embodied_not_design(model):
    base = Scenario(num_apps=15, app_lifetime_years=1.0, volume=100,
                    enforce_chip_lifetime=True)
    doubled = Scenario(num_apps=30, app_lifetime_years=1.0, volume=100,
                       enforce_chip_lifetime=True)
    a = model.assess(base)
    b = model.assess(doubled)
    assert b.generations == 2
    assert b.footprint.manufacturing == pytest.approx(2 * a.footprint.manufacturing)
    assert b.footprint.design == pytest.approx(a.footprint.design)


def test_n_fpga_multiplies_fleet(suite):
    device = FpgaDevice("f", area_mm2=100.0, node_name="10nm", peak_power_w=5.0,
                        capacity_mgates=10.0)
    model = FpgaLifecycleModel(device=device, suite=suite)
    one = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=100))
    two = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=100,
                                app_size_mgates=15.0))
    assert two.n_fpga_per_unit == 2
    assert two.footprint.manufacturing == pytest.approx(2 * one.footprint.manufacturing)
    assert two.footprint.operational == pytest.approx(2 * one.footprint.operational)


def test_assessment_total_consistency(model, baseline_scenario):
    assessment = model.assess(baseline_scenario)
    assert assessment.total_kg == pytest.approx(assessment.footprint.total)
    assert assessment.per_chip_embodied_kg > 0.0
