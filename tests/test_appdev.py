"""Tests for the Eq. (7) application-development model."""

import pytest

from repro.appdev.model import AppDevModel, DevelopmentEffort
from repro.errors import ParameterError
from repro.units import months_to_hours


class TestDevelopmentEffort:
    def test_per_application_hours(self):
        effort = DevelopmentEffort(frontend_months=2.0, backend_months=1.0)
        assert effort.per_application_hours() == pytest.approx(months_to_hours(3.0))

    def test_asic_effort_is_zero_by_default(self):
        effort = DevelopmentEffort.for_asic()
        assert effort.per_application_hours() == 0.0
        assert effort.config_hours_per_unit == 0.0

    def test_asic_software_flow_charged_to_frontend(self):
        effort = DevelopmentEffort.for_asic(software_months=1.5)
        assert effort.frontend_months == 1.5
        assert effort.backend_months == 0.0

    def test_rejects_negative_times(self):
        with pytest.raises(ParameterError):
            DevelopmentEffort(frontend_months=-1.0)


class TestAppDevModel:
    def test_zero_effort_zero_cfp(self):
        model = AppDevModel()
        result = model.assess_application(DevelopmentEffort.for_asic(), volume=1_000_000)
        assert result.total_kg == 0.0

    def test_components_sum(self):
        model = AppDevModel()
        result = model.assess_application(DevelopmentEffort(), volume=1000)
        assert result.total_kg == pytest.approx(
            result.development_kg + result.configuration_kg
        )

    def test_development_independent_of_volume(self):
        model = AppDevModel()
        small = model.assess_application(DevelopmentEffort(), volume=10)
        large = model.assess_application(DevelopmentEffort(), volume=1_000_000)
        assert small.development_kg == pytest.approx(large.development_kg)

    def test_configuration_linear_in_volume(self):
        model = AppDevModel()
        effort = DevelopmentEffort(config_hours_per_unit=0.1)
        one = model.assess_application(effort, volume=1).configuration_kg
        many = model.assess_application(effort, volume=1000).configuration_kg
        assert many == pytest.approx(one * 1000)

    def test_known_development_value(self):
        # 12 kW farm, 3 months, 0.4 kg/kWh -> 12 * 2190 * 0.4 kg.
        model = AppDevModel(farm_power_w=12_000.0, energy_source=400.0)
        effort = DevelopmentEffort(frontend_months=2.0, backend_months=1.0,
                                   config_hours_per_unit=0.0)
        result = model.assess_application(effort, volume=1)
        assert result.development_kg == pytest.approx(12.0 * months_to_hours(3.0) * 0.4)

    def test_appdev_small_vs_operational_scale(self):
        """Paper Sec 4.3: app-dev is a minimal CFP contributor."""
        model = AppDevModel()
        kg = model.per_application_kg(DevelopmentEffort(), volume=1_000_000)
        assert kg < 100_000.0  # well under operational megatons

    def test_rejects_negative_volume(self):
        with pytest.raises(ParameterError):
            AppDevModel().assess_application(DevelopmentEffort(), volume=-1)

    def test_rejects_negative_power(self):
        with pytest.raises(ParameterError):
            AppDevModel(farm_power_w=-5.0)
