"""Tests for pairwise-sweep heatmaps."""

import numpy as np
import pytest

from repro.analysis.heatmap import pairwise_heatmap
from repro.core.scenario import Scenario
from repro.errors import ParameterError


@pytest.fixture
def base():
    return Scenario(num_apps=2, app_lifetime_years=1.0, volume=10_000)


def test_grid_shape(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", [1, 2, 3], "lifetime", [0.5, 1.0]
    )
    assert result.ratios.shape == (2, 3)
    assert result.x_values == (1.0, 2.0, 3.0)
    assert result.y_values == (0.5, 1.0)


def test_cell_matches_direct_ratio(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", [1, 4], "volume", [1000, 100_000]
    )
    direct = dnn_comparator.ratio(base.with_num_apps(4).with_volume(1000))
    assert result.ratios[0, 1] == pytest.approx(direct)


def test_ratio_decreases_with_apps(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", list(range(1, 8)), "lifetime", [1.0]
    )
    row = result.ratios[0, :]
    assert all(b < a for a, b in zip(row, row[1:]))


def test_sustainable_mask(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", [1, 8], "lifetime", [0.5]
    )
    mask = result.fpga_sustainable_mask()
    assert mask.dtype == bool
    assert mask.shape == result.ratios.shape
    np.testing.assert_array_equal(mask, result.ratios < 1.0)


def test_boundary_cells_flag_contour(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", list(range(1, 10)), "lifetime", [1.0, 2.0]
    )
    mask = result.fpga_sustainable_mask()
    if mask.any() and not mask.all():
        assert result.boundary_cells()
    else:
        assert result.boundary_cells() == []


def test_rows_export(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", [1, 2], "lifetime", [1.0]
    )
    rows = result.rows()
    assert len(rows) == 2
    assert set(rows[0]) == {"num_apps", "lifetime", "ratio"}


def test_same_axis_rejected(dnn_comparator, base):
    with pytest.raises(ParameterError):
        pairwise_heatmap(dnn_comparator, base, "volume", [1], "volume", [2])


def test_unknown_axis_rejected(dnn_comparator, base):
    with pytest.raises(ParameterError):
        pairwise_heatmap(dnn_comparator, base, "frequency", [1], "volume", [2])


def test_empty_values_rejected(dnn_comparator, base):
    with pytest.raises(ParameterError):
        pairwise_heatmap(dnn_comparator, base, "num_apps", [], "volume", [2])
