"""Tests for pairwise-sweep heatmaps."""

import numpy as np
import pytest

from repro.analysis.heatmap import pairwise_heatmap
from repro.core.scenario import Scenario
from repro.errors import ParameterError


@pytest.fixture
def base():
    return Scenario(num_apps=2, app_lifetime_years=1.0, volume=10_000)


def test_grid_shape(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", [1, 2, 3], "lifetime", [0.5, 1.0]
    )
    assert result.ratios.shape == (2, 3)
    assert result.x_values == (1.0, 2.0, 3.0)
    assert result.y_values == (0.5, 1.0)


def test_cell_matches_direct_ratio(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", [1, 4], "volume", [1000, 100_000]
    )
    direct = dnn_comparator.ratio(base.with_num_apps(4).with_volume(1000))
    assert result.ratios[0, 1] == pytest.approx(direct)


def test_ratio_decreases_with_apps(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", list(range(1, 8)), "lifetime", [1.0]
    )
    row = result.ratios[0, :]
    assert all(b < a for a, b in zip(row, row[1:]))


def test_sustainable_mask(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", [1, 8], "lifetime", [0.5]
    )
    mask = result.fpga_sustainable_mask()
    assert mask.dtype == bool
    assert mask.shape == result.ratios.shape
    np.testing.assert_array_equal(mask, result.ratios < 1.0)


def test_boundary_cells_flag_contour(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", list(range(1, 10)), "lifetime", [1.0, 2.0]
    )
    mask = result.fpga_sustainable_mask()
    if mask.any() and not mask.all():
        assert result.boundary_cells()
    else:
        assert result.boundary_cells() == []


def test_rows_export(dnn_comparator, base):
    result = pairwise_heatmap(
        dnn_comparator, base, "num_apps", [1, 2], "lifetime", [1.0]
    )
    rows = result.rows()
    assert len(rows) == 2
    assert set(rows[0]) == {"num_apps", "lifetime", "ratio"}


def test_same_axis_rejected(dnn_comparator, base):
    with pytest.raises(ParameterError):
        pairwise_heatmap(dnn_comparator, base, "volume", [1], "volume", [2])


def test_unknown_axis_rejected(dnn_comparator, base):
    with pytest.raises(ParameterError):
        pairwise_heatmap(dnn_comparator, base, "frequency", [1], "volume", [2])


def test_empty_values_rejected(dnn_comparator, base):
    with pytest.raises(ParameterError):
        pairwise_heatmap(dnn_comparator, base, "num_apps", [], "volume", [2])


# ----------------------------------------------------------------------
# Masks and iso-ratio boundary on grids with non-finite ratios
# ----------------------------------------------------------------------


def _result_with_ratios(ratios: np.ndarray):
    from repro.analysis.heatmap import HeatmapResult

    n_rows, n_cols = ratios.shape
    return HeatmapResult(
        x_axis="num_apps",
        y_axis="lifetime",
        x_values=tuple(float(j) for j in range(1, n_cols + 1)),
        y_values=tuple(float(i) for i in range(1, n_rows + 1)),
        ratios=ratios,
    )


def test_sustainable_mask_with_non_finite_ratios():
    """-inf is a decisive FPGA win; +inf and nan are not."""
    ratios = np.array([
        [0.5, np.inf, 2.0],
        [-np.inf, np.nan, 0.9],
    ])
    mask = _result_with_ratios(ratios).fpga_sustainable_mask()
    np.testing.assert_array_equal(
        mask,
        np.array([
            [True, False, False],
            [True, False, True],
        ]),
    )


def test_boundary_cells_with_non_finite_ratios():
    """The iso-ratio contour stays well-defined around inf/nan cells."""
    ratios = np.array([
        [0.5, 0.5, 0.5],
        [0.5, np.inf, 0.5],
        [0.5, 0.5, 0.5],
    ])
    cells = set(_result_with_ratios(ratios).boundary_cells())
    # The inf cell flips against all four neighbours; they flip back.
    assert (1, 1) in cells
    assert {(0, 1), (1, 0), (1, 2), (2, 1)} <= cells
    assert (0, 0) not in cells  # corners only touch same-side neighbours


def test_boundary_empty_when_all_non_finite():
    ratios = np.full((2, 2), np.nan)
    result = _result_with_ratios(ratios)
    assert not result.fpga_sustainable_mask().any()
    assert result.boundary_cells() == []


def test_heatmap_single_point_axes(dnn_comparator, base):
    """1x1 grids work on both the classic and the batch path."""
    from repro.analysis.heatmap import pairwise_heatmap_batch

    classic = pairwise_heatmap(
        dnn_comparator, base, "num_apps", [3], "lifetime", [2.0]
    )
    batch = pairwise_heatmap_batch(
        dnn_comparator, base, "num_apps", [3], "lifetime", [2.0]
    )
    assert classic.ratios.shape == batch.ratios.shape == (1, 1)
    np.testing.assert_array_equal(batch.ratios, classic.ratios)
    assert classic.boundary_cells() == []  # no neighbours, no contour
