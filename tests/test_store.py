"""Tests for the array-backed sharded result store.

Covers digest stability (the scalar fold must agree with the vectorised
column fold bit-for-bit, and with itself across processes), shard
routing and eviction, hit/miss accounting, ``.npz`` persistence
round-trips, and the engine-level guarantee that store-served batches
are bit-identical to freshly computed ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import Scenario
from repro.engine import (
    EvaluationEngine,
    ScenarioBatch,
    ShardedResultStore,
    batch_digests,
    comparator_digest,
    pair_digest,
)
from repro.engine.store import (
    FLOAT_COLS,
    INT_COLS,
    materialise_comparison,
    pack_comparison,
)
from repro.errors import ParameterError, StoreCorruptError


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------


def test_scalar_and_column_digests_agree(dnn_comparator):
    scenarios = tuple(
        Scenario(
            num_apps=n,
            app_lifetime_years=0.5 * n,
            volume=1_000 * n,
            evaluation_years=None if n % 2 else 10.0,
            app_size_mgates=None if n % 3 else 5.0,
            enforce_chip_lifetime=bool(n % 2),
        )
        for n in range(1, 9)
    )
    batch = ScenarioBatch.from_scenarios(scenarios)
    lo, hi = batch_digests(dnn_comparator, batch)
    for i, scenario in enumerate(scenarios):
        assert pair_digest(dnn_comparator, scenario) == (int(lo[i]), int(hi[i]))


def test_ragged_rows_digest_via_scalar_fold(dnn_comparator):
    ragged = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=10)
    uniform = Scenario(num_apps=2, app_lifetime_years=1.0, volume=10)
    batch = ScenarioBatch.from_scenarios((ragged, uniform))
    lo, hi = batch_digests(dnn_comparator, batch)
    assert (int(lo[0]), int(hi[0])) == pair_digest(dnn_comparator, ragged)
    assert (int(lo[1]), int(hi[1])) == pair_digest(dnn_comparator, uniform)
    assert (int(lo[0]), int(hi[0])) != (int(lo[1]), int(hi[1]))


def test_digest_accepts_float_volumes_like_the_scalar_models(dnn_comparator):
    """``Scenario`` tolerates float volumes (only ``>= 1`` is checked,
    and the CLI parses ``--volume`` as float); the digest must fold them
    without raising, treat integral floats as their int spelling, and
    keep *fractional* volumes distinct — the int64 batch columns cannot
    represent them, so they are kernel-uncovered and must never collide
    in the store."""
    import dataclasses

    base = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)
    integral_float = dataclasses.replace(base, volume=1.0e6)
    assert pair_digest(dnn_comparator, integral_float) == pair_digest(
        dnn_comparator, base
    )

    low = dataclasses.replace(base, volume=1000.2)
    high = dataclasses.replace(base, volume=1000.8)
    assert pair_digest(dnn_comparator, low) != pair_digest(dnn_comparator, high)
    assert pair_digest(dnn_comparator, low) != pair_digest(
        dnn_comparator, dataclasses.replace(base, volume=1000)
    )

    engine = EvaluationEngine()
    first = engine.evaluate(dnn_comparator, low)
    second = engine.evaluate(dnn_comparator, high)
    assert first == dnn_comparator.compare(low)
    assert second == dnn_comparator.compare(high)
    assert first.ratio != second.ratio  # the old collision served one result


def test_fractional_volume_takes_the_exact_scalar_path(dnn_comparator):
    """The int64 volume column would truncate 1000.7 -> 1000; such rows
    must be kernel-uncovered and produce exact scalar results on the
    batch path too."""
    import dataclasses

    fractional = dataclasses.replace(
        Scenario(num_apps=2, app_lifetime_years=1.0, volume=1000), volume=1000.7
    )
    batch = ScenarioBatch.from_scenarios((fractional,) * 2)
    assert not batch.covered.any()
    engine = EvaluationEngine()
    result = engine.evaluate_batch(dnn_comparator, batch)
    direct = dnn_comparator.compare(fractional)
    assert result.comparison(0, fractional) == direct
    assert float(result.ratios[0]) == direct.ratio


def test_digest_normalises_lifetime_spellings(dnn_comparator):
    scalar = Scenario(num_apps=3, app_lifetime_years=2.0, volume=10)
    expanded = Scenario(num_apps=3, app_lifetime_years=[2.0, 2.0, 2.0], volume=10)
    assert pair_digest(dnn_comparator, scalar) == pair_digest(
        dnn_comparator, expanded
    )


def test_digest_distinguishes_fields(dnn_comparator, small_scenario):
    import dataclasses

    base = pair_digest(dnn_comparator, small_scenario)
    for changed in (
        small_scenario.with_num_apps(small_scenario.num_apps + 1),
        small_scenario.with_volume(small_scenario.volume + 1),
        small_scenario.with_lifetime(small_scenario.lifetimes[0] + 0.25),
        dataclasses.replace(small_scenario, evaluation_years=9.0),
        dataclasses.replace(small_scenario, app_size_mgates=2.0),
        dataclasses.replace(small_scenario, enforce_chip_lifetime=True),
    ):
        assert pair_digest(dnn_comparator, changed) != base


def test_comparator_digest_is_stable_and_distinct(dnn_comparator):
    """The comparator seed must survive interpreter restarts.

    ``hash()`` is salted per process; the BLAKE2b-over-pickle digest is
    not.  The constant below was produced by an independent Python
    process — a digest change means persisted caches silently go cold.
    """
    import dataclasses

    from repro.operation.model import OperationModel

    a = comparator_digest(dnn_comparator)
    assert a == comparator_digest(dnn_comparator)
    perturbed = dataclasses.replace(
        dnn_comparator,
        suite=dnn_comparator.suite.with_overrides(
            operation=OperationModel(energy_source="coal")
        ),
    )
    assert comparator_digest(perturbed) != a


# ----------------------------------------------------------------------
# Store semantics
# ----------------------------------------------------------------------


def _rows(keys):
    """Synthetic packed rows whose values encode their key."""
    lo = np.array(keys, dtype=np.uint64)
    hi = lo ^ np.uint64(0xDEADBEEF)
    floats = np.arange(len(keys) * FLOAT_COLS, dtype=np.float64).reshape(
        len(keys), FLOAT_COLS
    ) + lo[:, None].astype(np.float64)
    ints = np.arange(len(keys) * INT_COLS, dtype=np.int64).reshape(
        len(keys), INT_COLS
    ) + lo[:, None].astype(np.int64)
    return lo, hi, floats, ints


def test_store_put_get_roundtrip_bit_identical():
    store = ShardedResultStore(capacity=32, shards=4)
    lo, hi, floats, ints = _rows(range(10))
    store.put_batch(lo, hi, floats, ints)
    hits, got_f, got_i = store.get_batch(lo, hi)
    assert hits.all()
    np.testing.assert_array_equal(got_f, floats)
    np.testing.assert_array_equal(got_i, ints)
    stats = store.stats()
    assert stats.hits == 10 and stats.misses == 0 and stats.size == 10


def test_store_counts_misses_then_hits():
    store = ShardedResultStore(capacity=16, shards=2)
    lo, hi, floats, ints = _rows(range(4))
    hits, _, _ = store.get_batch(lo, hi)
    assert not hits.any()
    store.put_batch(lo, hi, floats, ints)
    hits, _, _ = store.get_batch(lo, hi)
    assert hits.all()
    stats = store.stats()
    assert stats.misses == 4 and stats.hits == 4
    assert stats.hit_rate == pytest.approx(0.5)
    assert stats.maxsize == 16


def test_store_high_word_mismatch_is_a_miss():
    """A low-word collision must degrade to a miss, never a wrong row."""
    store = ShardedResultStore(capacity=8, shards=1)
    lo, hi, floats, ints = _rows([7])
    store.put_batch(lo, hi, floats, ints)
    wrong_hi = hi ^ np.uint64(1)
    hits, _, _ = store.get_batch(lo, wrong_hi)
    assert not hits.any()
    hits, _, _ = store.get_batch(lo, hi)
    assert hits.all()


def test_store_eviction_keeps_size_bounded_and_recency():
    store = ShardedResultStore(capacity=8, shards=2)
    for start in range(0, 32, 4):
        lo, hi, floats, ints = _rows(range(start, start + 4))
        store.put_batch(lo, hi, floats, ints)
    assert store.stats().size <= 8
    # The most recent batch must have survived every eviction round.
    lo, hi, floats, ints = _rows(range(28, 32))
    hits, got_f, _ = store.get_batch(lo, hi)
    assert hits.all()
    np.testing.assert_array_equal(got_f, floats)
    # The oldest batch was evicted.
    lo, hi, _, _ = _rows(range(0, 4))
    hits, _, _ = store.get_batch(lo, hi)
    assert not hits.any()


def test_store_clamps_shards_to_capacity():
    store = ShardedResultStore(capacity=4, shards=16)
    assert store.n_shards == 4
    lo, hi, floats, ints = _rows(range(4))
    store.put_batch(lo, hi, floats, ints)
    assert store.stats().size == 4


def test_store_capacity_zero_disables_storage():
    store = ShardedResultStore(capacity=0, shards=8)
    lo, hi, floats, ints = _rows(range(3))
    store.put_batch(lo, hi, floats, ints)
    hits, _, _ = store.get_batch(lo, hi)
    assert not hits.any()
    stats = store.stats()
    assert stats.size == 0 and stats.misses == 3  # disabled still counts


def test_store_validates_arguments():
    with pytest.raises(ParameterError):
        ShardedResultStore(capacity=-1)
    with pytest.raises(ParameterError):
        ShardedResultStore(shards=0)


def test_store_clear_resets_everything():
    store = ShardedResultStore(capacity=8, shards=2)
    lo, hi, floats, ints = _rows(range(4))
    store.put_batch(lo, hi, floats, ints)
    store.get_batch(lo, hi)
    store.clear()
    stats = store.stats()
    assert stats.size == 0 and stats.hits == 0 and stats.misses == 0
    hits, _, _ = store.get_batch(lo, hi)
    assert not hits.any()


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


def test_store_save_load_roundtrip_bit_identical(tmp_path):
    store = ShardedResultStore(capacity=64, shards=4)
    lo, hi, floats, ints = _rows(range(20))
    # Non-trivial float payloads: negative, subnormal-ish, huge.
    floats[:, 0] = np.linspace(-1.0e300, 1.0e-300, 20)
    store.put_batch(lo, hi, floats, ints)
    path = store.save(tmp_path / "warmth.npz")

    loaded = ShardedResultStore(capacity=64, shards=7)  # re-sharded on load
    assert loaded.load(path) == 20
    hits, got_f, got_i = loaded.get_batch(lo, hi)
    assert hits.all()
    np.testing.assert_array_equal(got_f, floats)
    np.testing.assert_array_equal(got_i, ints)
    stats = loaded.stats()
    # Loading is not a lookup: only the verification pass counts.
    assert stats.hits == 20 and stats.misses == 0 and stats.size == 20


def test_store_save_crash_mid_write_keeps_previous_snapshot(
    tmp_path, monkeypatch
):
    """A save that dies mid-write must not tear the previous snapshot.

    ``save`` goes through the atomic writer (tmp + fsync + os.replace),
    so a crash while the new bytes are being written leaves the old
    file byte-identical and loadable — and no temp litter behind.
    """
    store = ShardedResultStore(capacity=64, shards=4)
    lo, hi, floats, ints = _rows(range(12))
    store.put_batch(lo, hi, floats, ints)
    path = store.save(tmp_path / "warmth.npz")
    before = path.read_bytes()

    lo2, hi2, floats2, ints2 = _rows(range(12, 24))
    store.put_batch(lo2, hi2, floats2, ints2)

    import repro.engine.atomicio as atomicio

    real_replace = atomicio.os.replace

    def _dies(src_path, dst_path):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(atomicio.os, "replace", _dies)
    with pytest.raises(OSError, match="simulated crash"):
        store.save(path)
    monkeypatch.setattr(atomicio.os, "replace", real_replace)

    assert path.read_bytes() == before
    assert not list(tmp_path.glob("*.tmp.*"))
    loaded = ShardedResultStore(capacity=64, shards=4)
    assert loaded.load(path) == 12
    hits, got_f, _ = loaded.get_batch(lo, hi)
    assert hits.all()
    np.testing.assert_array_equal(got_f, floats)

    # And a healthy save afterwards picks up the full store again.
    store.save(path)
    fresh = ShardedResultStore(capacity=64, shards=4)
    assert fresh.load(path) == 24


def test_store_overflow_save_load_keeps_most_recent(tmp_path):
    """Fill past capacity, round-trip, and verify eviction + counters."""
    store = ShardedResultStore(capacity=8, shards=2)
    for start in range(0, 24, 4):
        lo, hi, floats, ints = _rows(range(start, start + 4))
        store.put_batch(lo, hi, floats, ints)
    assert store.stats().size <= 8
    path = store.save(tmp_path / "overflow.npz")

    loaded = ShardedResultStore(capacity=8, shards=2)
    n = loaded.load(path)
    assert n == store.stats().size
    lo, hi, floats, ints = _rows(range(20, 24))
    hits, got_f, got_i = loaded.get_batch(lo, hi)
    assert hits.all()
    np.testing.assert_array_equal(got_f, floats)
    np.testing.assert_array_equal(got_i, ints)
    stats = loaded.stats()
    assert stats.hits == 4 and stats.misses == 0


def test_store_load_rejects_incompatible_format(tmp_path):
    path = tmp_path / "bad.npz"
    with path.open("wb") as handle:
        np.savez_compressed(
            handle,
            meta=np.array([999, FLOAT_COLS, INT_COLS], dtype=np.int64),
            lo=np.empty(0, np.uint64),
            hi=np.empty(0, np.uint64),
            floats=np.empty((0, FLOAT_COLS)),
            ints=np.empty((0, INT_COLS), np.int64),
        )
    # Typed as StoreCorruptError, which subclasses ParameterError so
    # pre-existing callers catching the base keep working.
    with pytest.raises(StoreCorruptError):
        ShardedResultStore().load(path)
    with pytest.raises(ParameterError):
        ShardedResultStore().load(path)


def _saved_store_path(tmp_path, n_rows: int = 16):
    store = ShardedResultStore(capacity=64, shards=4)
    lo, hi, floats, ints = _rows(range(n_rows))
    store.put_batch(lo, hi, floats, ints)
    return store.save(tmp_path / "warmth.npz")


def test_store_load_byte_truncated_file_raises_typed_error(tmp_path):
    """A partially written dump (killed mid-save, full disk) must raise
    the typed corruption error at every truncation point, never a bare
    zipfile/OSError and never silently load garbage rows."""
    path = _saved_store_path(tmp_path)
    blob = path.read_bytes()
    for keep in (len(blob) // 2, len(blob) - 7, 3):
        truncated = tmp_path / f"truncated-{keep}.npz"
        truncated.write_bytes(blob[:keep])
        with pytest.raises(StoreCorruptError):
            ShardedResultStore().load(truncated)


def test_store_load_flipped_bytes_raise_or_load_consistently(tmp_path):
    """Random byte corruption inside the zip payload must either raise
    the typed error (CRC/decode failure) or — if the flip lands in
    payload numpy data that still decodes — load *consistent* columns.
    It must never escape as an untyped zipfile/ValueError crash."""
    from repro.engine.serve.faults import FaultPlan

    path = _saved_store_path(tmp_path)
    FaultPlan(seed=11).corrupt_file(path, flips=64)
    store = ShardedResultStore()
    try:
        loaded = store.load(path)
    except StoreCorruptError:
        return
    assert 0 <= loaded <= store.stats().size


def test_store_load_missing_file_stays_file_not_found(tmp_path):
    """ENOENT is not corruption — callers distinguish 'no warmth yet'
    (fine, first run) from 'warmth damaged' (log loudly)."""
    with pytest.raises(FileNotFoundError):
        ShardedResultStore().load(tmp_path / "never-saved.npz")


def test_store_load_row_length_mismatch_raises(tmp_path):
    path = tmp_path / "ragged.npz"
    with path.open("wb") as handle:
        np.savez_compressed(
            handle,
            meta=np.array([1, FLOAT_COLS, INT_COLS], dtype=np.int64),
            lo=np.arange(4, dtype=np.uint64),
            hi=np.arange(4, dtype=np.uint64),
            floats=np.zeros((3, FLOAT_COLS)),  # 3 rows vs 4 keys
            ints=np.zeros((4, INT_COLS), np.int64),
        )
    with pytest.raises(StoreCorruptError):
        ShardedResultStore().load(path)


def test_engine_load_cache_corrupt_file_starts_cold(
    tmp_path, dnn_comparator, caplog
):
    """Engine-level contract: a damaged ``.npz`` warms nothing, logs a
    warning, and the engine still evaluates correctly from cold."""
    import logging

    path = _saved_store_path(tmp_path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])

    with caplog.at_level(logging.WARNING, logger="repro.engine.engine"):
        engine = EvaluationEngine(cache_file=path)  # must not raise
    assert any("starting cold" in rec.message for rec in caplog.records)
    assert engine.cache_stats.size == 0

    scenario = Scenario(num_apps=3, app_lifetime_years=1.5, volume=10_000)
    assert engine.evaluate(dnn_comparator, scenario) == (
        dnn_comparator.compare(scenario)
    )
    # And saving over the corpse heals it for the next process.
    engine.save_cache(path)
    assert ShardedResultStore().load(path) >= 1


# ----------------------------------------------------------------------
# Pack / materialise round trip
# ----------------------------------------------------------------------


def test_pack_materialise_round_trip(dnn_comparator, small_scenario):
    direct = dnn_comparator.compare(small_scenario)
    packed = pack_comparison(direct, dnn_comparator)
    assert packed is not None
    rebuilt = materialise_comparison(packed[0], packed[1], small_scenario)
    assert rebuilt == direct
    assert rebuilt.ratio == direct.ratio
    assert rebuilt.summary() == direct.summary()


def test_pack_comparison_rejects_ragged_lifetimes(dnn_comparator):
    ragged = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=100)
    result = dnn_comparator.compare(ragged)
    assert pack_comparison(result, dnn_comparator) is None


# ----------------------------------------------------------------------
# Engine-level store behaviour
# ----------------------------------------------------------------------


def test_engine_warm_batch_bit_identical_to_cold(dnn_comparator):
    from repro.analysis.heatmap import pairwise_heatmap_batch

    engine = EvaluationEngine()
    args = (
        dnn_comparator,
        Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000),
        "num_apps", tuple(range(1, 13)), "lifetime", (0.5, 1.0, 2.0, 3.0),
    )
    cold = pairwise_heatmap_batch(*args, engine=engine)
    computed = engine.rows_computed
    warm = pairwise_heatmap_batch(*args, engine=engine)
    np.testing.assert_array_equal(warm.ratios, cold.ratios)
    assert engine.rows_computed == computed  # warm run recomputed nothing
    assert engine.cache_stats.hits >= 48


def test_engine_batch_path_deduplicates_within_batch(dnn_comparator):
    engine = EvaluationEngine()
    scenarios = tuple(
        Scenario(num_apps=n, app_lifetime_years=1.0, volume=1_000)
        for n in (1, 2, 3, 1, 2, 3, 1, 2, 3)
    )
    result = engine.evaluate_batch(dnn_comparator, scenarios)
    assert result.size == 9
    assert engine.rows_computed == 3
    np.testing.assert_array_equal(result.ratios[:3], result.ratios[3:6])


def test_engine_object_and_batch_paths_share_warmth(dnn_comparator):
    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=1.0, volume=5_000)
        for n in range(1, 13)
    ]
    engine = EvaluationEngine()
    objects = engine.evaluate_many(dnn_comparator, scenarios)  # object path
    computed = engine.rows_computed
    batch = engine.evaluate_batch(dnn_comparator, scenarios)  # batch path
    assert engine.rows_computed == computed  # served from shared warmth
    for i, (scenario, obj) in enumerate(zip(scenarios, objects)):
        assert batch.comparison(i, scenario) == obj


def test_engine_cache_file_round_trip(tmp_path, dnn_comparator):
    from repro.analysis.sweep import sweep_batch

    base = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)
    values = list(range(1, 33))
    path = tmp_path / "engine-warmth.npz"

    first = EvaluationEngine(cache_file=path)  # file absent: starts cold
    cold = sweep_batch(dnn_comparator, base, "num_apps", values, engine=first)
    assert first.rows_computed == len(values)
    first.save_cache()

    second = EvaluationEngine(cache_file=path)  # warm from disk
    warm = sweep_batch(dnn_comparator, base, "num_apps", values, engine=second)
    assert second.rows_computed == 0
    np.testing.assert_array_equal(warm.ratios, cold.ratios)
    np.testing.assert_array_equal(warm.fpga_totals, cold.fpga_totals)
    np.testing.assert_array_equal(warm.asic_totals, cold.asic_totals)
    # Object callers materialise from the persisted columns bit-identically.
    direct = dnn_comparator.compare(base.with_num_apps(7))
    assert second.evaluate(dnn_comparator, base.with_num_apps(7)) == direct


def test_engine_save_cache_requires_a_path(dnn_comparator):
    engine = EvaluationEngine()
    with pytest.raises(ParameterError):
        engine.save_cache()


def test_engine_ragged_scenarios_use_object_cache(dnn_comparator):
    ragged = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=100)
    engine = EvaluationEngine()
    first = engine.evaluate(dnn_comparator, ragged)
    second = engine.evaluate(dnn_comparator, ragged)
    assert first == second == dnn_comparator.compare(ragged)
    stats = engine.cache_stats
    assert stats.misses == 1 and stats.hits == 1


def test_engine_cache_shards_validation():
    with pytest.raises(ParameterError):
        EvaluationEngine(cache_shards=0)
