"""Tests for the vectorized NumPy evaluation kernel.

Parity is the contract: the same-comparator path must match the scalar
models bit-for-bit across the device catalog (it feeds the shared LRU
cache), and the multi-comparator kernel path must agree to
``rtol=1e-12`` — including degenerate zero / credit-negative totals and
the signed-infinity ratio semantics.
"""

from __future__ import annotations

import dataclasses
import math
import warnings

import numpy as np
import pytest

from repro.analysis.dse import explore, explore_batch
from repro.analysis.heatmap import pairwise_heatmap, pairwise_heatmap_batch
from repro.analysis.montecarlo import (
    ParameterDistribution,
    monte_carlo,
    monte_carlo_batch,
)
from repro.analysis.sweep import sweep, sweep_batch
from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.design.model import DesignModel
from repro.devices.catalog import DOMAIN_NAMES
from repro.engine import (
    BatchResult,
    EvaluationEngine,
    ScenarioBatch,
    VectorizedEvaluator,
)
from repro.engine.vector import ratio_kernel, repeat_add, winner_kernel
from repro.eol.model import EolModel
from repro.errors import ParameterError
from repro.manufacturing.act import ManufacturingModel
from repro.operation.model import OperationModel


@pytest.fixture(scope="module")
def evaluator() -> VectorizedEvaluator:
    return VectorizedEvaluator()


def _scenario_grid() -> list[Scenario]:
    """Scenario variety covering every kernel branch."""
    return [
        Scenario(num_apps=n, app_lifetime_years=t, volume=v,
                 evaluation_years=ey, app_size_mgates=sz,
                 enforce_chip_lifetime=e)
        for n in (1, 2, 5, 7)
        for t in (0.5, 2.0, 3.25)
        for v, ey, sz, e in [
            (1, None, None, False),
            (1_000_000, None, None, False),
            (10_000, 30.0, None, True),
            (500, None, 1200.0, False),
        ]
    ]


# ----------------------------------------------------------------------
# Same-comparator path: bit-exact parity across the catalog
# ----------------------------------------------------------------------


@pytest.mark.parametrize("domain", DOMAIN_NAMES)
def test_evaluate_batch_bit_exact_across_catalog(evaluator, domain):
    comparator = PlatformComparator.for_domain(domain)
    scenarios = _scenario_grid()
    batch = evaluator.evaluate_batch(comparator, scenarios)
    assert batch.size == len(scenarios)
    for i, scenario in enumerate(scenarios):
        reference = comparator.compare(scenario)
        assert batch.fpga_totals[i] == reference.fpga.footprint.total
        assert batch.asic_totals[i] == reference.asic.footprint.total
        assert batch.ratios[i] == reference.ratio
        assert batch.winners[i] == reference.winner
        for component in ("design", "manufacturing", "packaging", "eol",
                          "appdev", "operational"):
            assert batch.fpga_components[component][i] == getattr(
                reference.fpga.footprint, component
            )
            assert batch.asic_components[component][i] == getattr(
                reference.asic.footprint, component
            )
        materialised = batch.comparison(i, scenario)
        assert materialised == reference


def test_evaluate_batch_accepts_column_batches(evaluator, dnn_comparator):
    """from_arrays and from_scenarios spell the same batch."""
    num_apps = np.array([1, 3, 5])
    lifetime = np.array([0.5, 2.0, 3.0])
    columns = ScenarioBatch.from_arrays(
        num_apps=num_apps, lifetime=lifetime, volume=10_000
    )
    objects = [
        Scenario(num_apps=int(n), app_lifetime_years=float(t), volume=10_000)
        for n, t in zip(num_apps, lifetime)
    ]
    a = evaluator.evaluate_batch(dnn_comparator, columns)
    b = evaluator.evaluate_batch(dnn_comparator, objects)
    np.testing.assert_array_equal(a.ratios, b.ratios)
    np.testing.assert_array_equal(a.fpga_totals, b.fpga_totals)
    np.testing.assert_array_equal(a.asic_totals, b.asic_totals)


def test_heterogeneous_lifetimes_take_scalar_fallback(evaluator, dnn_comparator):
    scenarios = [
        Scenario(num_apps=2, app_lifetime_years=[1.0, 2.5], volume=1_000),
        Scenario(num_apps=3, app_lifetime_years=2.0, volume=1_000),
        Scenario(num_apps=3, app_lifetime_years=[1.0, 2.0, 4.0], volume=77),
    ]
    assert not evaluator.covers(scenarios[0])
    assert evaluator.covers(scenarios[1])
    batch = evaluator.evaluate_batch(dnn_comparator, scenarios)
    for i, scenario in enumerate(scenarios):
        reference = dnn_comparator.compare(scenario)
        assert batch.ratios[i] == reference.ratio
        assert batch.fpga_totals[i] == reference.fpga.footprint.total
        assert batch.comparison(i, scenario) == reference


# ----------------------------------------------------------------------
# Multi-comparator kernel path (per-row suites)
# ----------------------------------------------------------------------


def _perturb(comparator, value: float):
    """Perturb every sub-model the ext_uncertainty study varies."""
    return dataclasses.replace(
        comparator,
        suite=comparator.suite.with_overrides(
            operation=OperationModel(
                energy_source=30.0 + value,
                profile=comparator.suite.operation.profile,
            ),
            manufacturing=ManufacturingModel(recycled_fraction=min(1.0, value / 50.0)),
            eol=EolModel(recycled_fraction=min(1.0, value / 60.0)),
            design=DesignModel(energy_source=700.0 - 10.0 * value),
        ),
    )


def test_evaluate_pairs_batch_matches_scalar_rtol(evaluator, dnn_comparator,
                                                  baseline_scenario):
    pairs = [
        (_perturb(dnn_comparator, float(v)), baseline_scenario)
        for v in range(40)
    ]
    batch = evaluator.evaluate_pairs_batch(pairs)
    for i, (comparator, scenario) in enumerate(pairs):
        reference = comparator.compare(scenario)
        np.testing.assert_allclose(
            batch.fpga_totals[i], reference.fpga.footprint.total,
            rtol=1.0e-12, atol=0.0,
        )
        np.testing.assert_allclose(
            batch.asic_totals[i], reference.asic.footprint.total,
            rtol=1.0e-12, atol=0.0,
        )
        np.testing.assert_allclose(
            batch.ratios[i], reference.ratio, rtol=1.0e-12, atol=0.0
        )
        assert batch.winners[i] == reference.winner


def test_pairs_batch_mixed_domains_and_scenarios(evaluator):
    """Rows may mix domains, suites and scenarios arbitrarily."""
    pairs = []
    for domain in DOMAIN_NAMES:
        comparator = PlatformComparator.for_domain(domain)
        pairs.append((comparator, Scenario(num_apps=2, app_lifetime_years=1.5,
                                           volume=5_000)))
        pairs.append((_perturb(comparator, 7.0),
                      Scenario(num_apps=4, app_lifetime_years=2.5,
                               volume=250_000, enforce_chip_lifetime=True,
                               evaluation_years=40.0)))
    batch = evaluator.evaluate_pairs_batch(pairs)
    for i, (comparator, scenario) in enumerate(pairs):
        reference = comparator.compare(scenario)
        np.testing.assert_allclose(
            batch.ratios[i], reference.ratio, rtol=1.0e-12, atol=0.0
        )


def test_pairs_batch_credit_negative_eol_parity(evaluator, baseline_scenario):
    """Aggressive recycling credits (negative per-chip EOL) stay in parity."""
    comparator = PlatformComparator.for_domain("dnn")
    credited = dataclasses.replace(
        comparator,
        suite=comparator.suite.with_overrides(
            eol=EolModel(recycled_fraction=1.0, material="copper")
        ),
    )
    reference = credited.compare(baseline_scenario)
    assert reference.fpga.footprint.eol < 0.0  # the credit is real
    batch = evaluator.evaluate_pairs_batch([(credited, baseline_scenario)])
    np.testing.assert_allclose(
        batch.fpga_components["eol"][0], reference.fpga.footprint.eol,
        rtol=1.0e-12, atol=0.0,
    )
    np.testing.assert_allclose(
        batch.ratios[0], reference.ratio, rtol=1.0e-12, atol=0.0
    )


# ----------------------------------------------------------------------
# Degenerate-ratio semantics (masks, no warnings)
# ----------------------------------------------------------------------


def test_ratio_kernel_matches_scalar_degenerate_semantics():
    fpga = np.array([10.0, 0.0, -0.5, 5.0, -5.0, 2.0])
    asic = np.array([0.0, 0.0, 0.0, 2.0, -1.0, -2.0])
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any FP warning fails the test
        ratios = ratio_kernel(fpga, asic)
    assert ratios[0] == math.inf       # zero ASIC, positive FPGA
    assert ratios[1] == 1.0            # both zero: perfect tie
    assert ratios[2] == -math.inf      # zero ASIC, credit-negative FPGA
    assert ratios[3] == pytest.approx(2.5)
    assert ratios[4] == pytest.approx(5.0)   # both negative
    assert ratios[5] == pytest.approx(-1.0)  # negative ASIC only


def test_winner_kernel_ties_go_to_asic():
    fpga = np.array([1.0, 2.0, 2.0])
    asic = np.array([2.0, 1.0, 2.0])
    np.testing.assert_array_equal(
        winner_kernel(fpga, asic), np.array(["fpga", "asic", "asic"])
    )


def test_repeat_add_reproduces_left_fold():
    x = np.array([0.1, 0.7, 1.0 / 3.0, 1234.5678])
    counts = np.array([1, 4, 7, 23])
    result = repeat_add(x, counts)
    for xi, ni, got in zip(x, counts, result):
        acc = xi
        for _ in range(int(ni) - 1):
            acc = acc + xi
        assert got == acc  # bit-exact, not approx


def test_repeat_add_empty_and_zero_counts():
    np.testing.assert_array_equal(
        repeat_add(np.array([]), np.array([], dtype=int)), np.array([])
    )
    np.testing.assert_array_equal(
        repeat_add(np.array([3.0]), np.array([0])), np.array([0.0])
    )


# ----------------------------------------------------------------------
# Engine integration: fast path, cache warmth, scalar spelling
# ----------------------------------------------------------------------


def test_engine_fast_path_populates_shared_cache(dnn_comparator):
    engine = EvaluationEngine()
    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=1.0, volume=1_000)
        for n in range(1, 13)
    ]
    engine.evaluate_many(dnn_comparator, scenarios)  # vector fast path
    assert engine.cache_stats.misses == len(scenarios)
    engine.evaluate(dnn_comparator, scenarios[0])  # scalar caller
    stats = engine.cache_stats
    assert stats.hits >= 1 and stats.misses == len(scenarios)


def test_engine_vectorized_results_equal_scalar_engine(dnn_comparator):
    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=1.5, volume=20_000)
        for n in range(1, 13)
    ]
    vector = EvaluationEngine().evaluate_many(dnn_comparator, scenarios)
    scalar = EvaluationEngine(vectorize=False).evaluate_many(
        dnn_comparator, scenarios
    )
    for v, s in zip(vector, scalar):
        assert v == s


def test_engine_small_batches_skip_the_kernel(dnn_comparator, small_scenario):
    """Below min_vector_batch the scalar path runs (same results)."""
    engine = EvaluationEngine(min_vector_batch=1_000_000)
    direct = dnn_comparator.compare(small_scenario)
    assert engine.evaluate(dnn_comparator, small_scenario) == direct


def test_engine_validates_min_vector_batch():
    with pytest.raises(ParameterError):
        EvaluationEngine(min_vector_batch=0)


def test_engine_evaluate_batch_scalar_spelling_matches(dnn_comparator):
    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=2.0, volume=1_000)
        for n in (1, 2, 3)
    ]
    vector = EvaluationEngine().evaluate_batch(dnn_comparator, scenarios)
    scalar = EvaluationEngine(vectorize=False).evaluate_batch(
        dnn_comparator, scenarios
    )
    assert isinstance(scalar, BatchResult)
    np.testing.assert_array_equal(vector.ratios, scalar.ratios)
    np.testing.assert_array_equal(vector.winners, scalar.winners)
    np.testing.assert_array_equal(vector.n_fpga, scalar.n_fpga)
    np.testing.assert_array_equal(vector.fpga_generations, scalar.fpga_generations)
    np.testing.assert_array_equal(vector.asic_generations, scalar.asic_generations)
    for i, scenario in enumerate(scenarios):
        assert vector.comparison(i, scenario) == scalar.comparison(i, scenario)


# ----------------------------------------------------------------------
# Analysis batch entry points
# ----------------------------------------------------------------------


def test_sweep_batch_matches_sweep(dnn_comparator, baseline_scenario):
    values = [1, 2, 3, 4, 5, 6, 7, 8]
    classic = sweep(dnn_comparator, baseline_scenario, "num_apps", values)
    batch = sweep_batch(dnn_comparator, baseline_scenario, "num_apps", values)
    np.testing.assert_array_equal(batch.ratios, np.array(classic.ratios))
    np.testing.assert_array_equal(batch.fpga_totals, np.array(classic.fpga_totals))
    np.testing.assert_array_equal(batch.asic_totals, np.array(classic.asic_totals))
    assert list(batch.winners) == [classic.winner_at(i) for i in range(len(values))]


def test_sweep_batch_rejects_bad_axis(dnn_comparator, baseline_scenario):
    with pytest.raises(ParameterError):
        sweep_batch(dnn_comparator, baseline_scenario, "nonsense", [1.0])
    with pytest.raises(ParameterError):
        sweep_batch(dnn_comparator, baseline_scenario, "volume", [])


def test_heatmap_batch_matches_heatmap(dnn_comparator, baseline_scenario):
    x_values, y_values = [1, 3, 9], [0.5, 1.5, 2.5]
    classic = pairwise_heatmap(
        dnn_comparator, baseline_scenario,
        "num_apps", x_values, "lifetime", y_values,
        engine=EvaluationEngine(),
    )
    batch = pairwise_heatmap_batch(
        dnn_comparator, baseline_scenario,
        "num_apps", x_values, "lifetime", y_values,
    )
    np.testing.assert_array_equal(batch.ratios, classic.ratios)
    assert batch.x_values == classic.x_values
    assert batch.y_values == classic.y_values


def test_heatmap_batch_volume_axis(dnn_comparator, baseline_scenario):
    """Volume axes flow through the int column exactly like with_volume."""
    result = pairwise_heatmap_batch(
        dnn_comparator, baseline_scenario,
        "volume", [1.0e3, 1.0e5, 1.0e7], "lifetime", [1.0, 2.0],
    )
    manual = pairwise_heatmap(
        dnn_comparator, baseline_scenario,
        "volume", [1.0e3, 1.0e5, 1.0e7], "lifetime", [1.0, 2.0],
        engine=EvaluationEngine(vectorize=False),
    )
    np.testing.assert_array_equal(result.ratios, manual.ratios)


def test_monte_carlo_batch_matches_monte_carlo(dnn_comparator, small_scenario):
    def set_intensity(comparator, value):
        return dataclasses.replace(
            comparator,
            suite=comparator.suite.with_overrides(
                operation=OperationModel(
                    energy_source=value,
                    profile=comparator.suite.operation.profile,
                )
            ),
        )

    dists = [ParameterDistribution("use_intensity", 30.0, 700.0, set_intensity)]
    classic = monte_carlo(dnn_comparator, small_scenario, dists,
                          n_samples=50, seed=7,
                          engine=EvaluationEngine(vectorize=False))
    batch = monte_carlo_batch(dnn_comparator, small_scenario, dists,
                              n_samples=50, seed=7)
    assert batch.samples == classic.samples  # identical RNG consumption
    np.testing.assert_allclose(batch.ratios, classic.ratios,
                               rtol=1.0e-12, atol=0.0)
    assert batch.fpga_win_probability == classic.fpga_win_probability


def test_explore_batch_matches_explore(small_scenario):
    grid = {
        "use_energy_source": ["wind", "coal"],
        "duty_cycle": [0.1, 0.5],
    }
    classic = explore("dnn", small_scenario, grid,
                      engine=EvaluationEngine(vectorize=False))
    batch = explore_batch("dnn", small_scenario, grid)
    assert len(batch.points) == len(classic.points)
    for got, want in zip(batch.points, classic.points):
        assert got.overrides == want.overrides
        np.testing.assert_allclose(got.fpga_total_kg, want.fpga_total_kg,
                                   rtol=1.0e-12, atol=0.0)
        np.testing.assert_allclose(got.asic_total_kg, want.asic_total_kg,
                                   rtol=1.0e-12, atol=0.0)
        assert got.winner == want.winner


def test_heatmap_batch_heterogeneous_base_matches_scalar(dnn_comparator):
    """A ragged base works when the lifetime axis overrides it (and the
    batch path mirrors the scalar path's apply-y-then-x failure mode)."""
    ragged = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=10_000)
    classic = pairwise_heatmap(
        dnn_comparator, ragged, "num_apps", [1, 2], "lifetime", [1.0, 2.0],
        engine=EvaluationEngine(vectorize=False),
    )
    batch = pairwise_heatmap_batch(
        dnn_comparator, ragged, "num_apps", [1, 2], "lifetime", [1.0, 2.0]
    )
    np.testing.assert_array_equal(batch.ratios, classic.ratios)
    # Swapped axes apply num_apps while lifetimes are still ragged: the
    # scalar path raises, so the batch path must too.
    with pytest.raises(ParameterError):
        pairwise_heatmap(
            dnn_comparator, ragged, "lifetime", [1.0, 2.0], "num_apps", [1, 2],
            engine=EvaluationEngine(vectorize=False),
        )
    with pytest.raises(ParameterError):
        pairwise_heatmap_batch(
            dnn_comparator, ragged, "lifetime", [1.0, 2.0], "num_apps", [1, 2]
        )


def test_win_probability_uses_totals_based_winners():
    """A credit-negative ASIC total flips the quotient's sign; the
    winners column keeps the probability honest."""
    from repro.analysis.montecarlo import MonteCarloResult

    ratios = np.array([-5.0, 0.5, 2.0])  # first draw: fpga=10, asic=-2
    by_ratio = MonteCarloResult(ratios=ratios, samples=({},) * 3)
    assert by_ratio.fpga_win_probability == pytest.approx(2 / 3)  # proxy
    with_winners = MonteCarloResult(
        ratios=ratios, samples=({},) * 3,
        winners=np.array(["asic", "fpga", "asic"]),
    )
    assert with_winners.fpga_win_probability == pytest.approx(1 / 3)


def test_monte_carlo_results_carry_winners(dnn_comparator, small_scenario):
    def set_intensity(comparator, value):
        return dataclasses.replace(
            comparator,
            suite=comparator.suite.with_overrides(
                operation=OperationModel(
                    energy_source=value,
                    profile=comparator.suite.operation.profile,
                )
            ),
        )

    dists = [ParameterDistribution("use_intensity", 30.0, 700.0, set_intensity)]
    classic = monte_carlo(dnn_comparator, small_scenario, dists,
                          n_samples=10, seed=3,
                          engine=EvaluationEngine(vectorize=False))
    batch = monte_carlo_batch(dnn_comparator, small_scenario, dists,
                              n_samples=10, seed=3)
    assert classic.winners is not None and batch.winners is not None
    np.testing.assert_array_equal(classic.winners, batch.winners)


# ----------------------------------------------------------------------
# ScenarioBatch columns
# ----------------------------------------------------------------------


def test_from_arrays_validates_vectorised():
    with pytest.raises(ParameterError):
        ScenarioBatch.from_arrays(num_apps=[1, 0], lifetime=2.0, volume=10)
    with pytest.raises(ParameterError):
        ScenarioBatch.from_arrays(num_apps=1, lifetime=-1.0, volume=10)
    with pytest.raises(ParameterError):
        ScenarioBatch.from_arrays(num_apps=1, lifetime=2.0, volume=0)
    with pytest.raises(ParameterError):
        ScenarioBatch.from_arrays(num_apps=1, lifetime=2.0, volume=10,
                                  evaluation_years=0.0)


def test_from_arrays_broadcasts_scalars():
    batch = ScenarioBatch.from_arrays(
        num_apps=[1, 2, 3], lifetime=2.0, volume=100
    )
    assert batch.size == 3
    np.testing.assert_array_equal(batch.volume, [100, 100, 100])
    assert batch.all_covered
    scenario = batch.scenario_at(1)
    assert scenario == Scenario(num_apps=2, app_lifetime_years=2.0, volume=100)


def test_identical_scenario_fast_path_marks_coverage():
    uniform = Scenario(num_apps=3, app_lifetime_years=2.0, volume=10)
    ragged = Scenario(num_apps=2, app_lifetime_years=[1.0, 3.0], volume=10)
    assert ScenarioBatch.from_scenarios([uniform] * 5).all_covered
    assert not ScenarioBatch.from_scenarios([ragged] * 5).covered.any()
