"""Tests for the fleet-assignment planner."""

import pytest

from repro.core.suite import ModelSuite
from repro.errors import ParameterError
from repro.fleet.planner import Application, FleetPlan, FleetPlanner

SUITE = ModelSuite.default()


@pytest.fixture(scope="module")
def planner():
    return FleetPlanner.for_domain("dnn", SUITE)


def _apps(*specs):
    return [Application(f"app{i}", t, v) for i, (t, v) in enumerate(specs)]


class TestApplication:
    def test_validation(self):
        with pytest.raises(ParameterError):
            Application("a", lifetime_years=0.0, volume=10)
        with pytest.raises(ParameterError):
            Application("a", lifetime_years=1.0, volume=0)


class TestPlanner:
    def test_rejects_empty_portfolio(self, planner):
        with pytest.raises(ParameterError):
            planner.plan([])

    def test_rejects_duplicate_names(self, planner):
        apps = [Application("x", 1.0, 10), Application("x", 2.0, 20)]
        with pytest.raises(ParameterError):
            planner.plan(apps)

    def test_plan_partitions_portfolio(self, planner):
        apps = _apps((1.0, 100_000), (6.0, 2_000_000), (0.5, 50_000))
        plan = planner.plan(apps)
        assert sorted(plan.fpga_apps + plan.asic_apps) == sorted(a.name for a in apps)
        assert plan.exact

    def test_mixed_never_worse_than_uniform(self, planner):
        apps = _apps((1.0, 100_000), (6.0, 2_000_000), (0.5, 50_000),
                     (2.0, 500_000), (1.5, 250_000))
        plan = planner.plan(apps)
        assert plan.total_kg <= plan.all_fpga_kg + 1e-6
        assert plan.total_kg <= plan.all_asic_kg + 1e-6
        assert plan.savings_vs_best_uniform_kg >= -1e-6

    def test_short_lived_small_apps_go_fpga(self, planner):
        """Churning small apps amortise the shared FPGA; the long-lived,
        huge-volume flagship prefers its dedicated ASIC."""
        apps = [
            Application("flagship", 6.0, 2_000_000),
            Application("pilot-a", 0.5, 50_000),
            Application("pilot-b", 0.5, 50_000),
            Application("pilot-c", 0.5, 50_000),
        ]
        assignment = planner.plan(apps).assignment()
        assert assignment["pilot-a"] == "fpga"
        assert assignment["pilot-b"] == "fpga"
        assert assignment["pilot-c"] == "fpga"

    def test_single_app_matches_direct_comparison(self, planner):
        """One-app planning reduces to the paper's two-way comparison."""
        from repro.core.comparison import PlatformComparator
        from repro.core.scenario import Scenario

        app = Application("only", 2.0, 1_000_000)
        plan = planner.plan([app])
        comparator = PlatformComparator.for_domain("dnn", SUITE)
        ratio = comparator.ratio(
            Scenario(num_apps=1, app_lifetime_years=2.0, volume=1_000_000)
        )
        expected = "fpga" if ratio < 1.0 else "asic"
        assert plan.assignment()["only"] == expected

    def test_exact_matches_greedy_on_equal_volumes(self, planner):
        """With uniform volumes the greedy descent is provably optimal;
        it must agree with subset enumeration."""
        apps = _apps(*[(1.0, 100_000)] * 6)
        exact_subset, exact_cost = planner._plan_exact(apps)
        greedy_subset, greedy_cost = planner._plan_greedy(apps)
        assert greedy_cost == pytest.approx(exact_cost)
        assert greedy_subset == exact_subset

    def test_large_portfolio_uses_greedy(self, planner):
        apps = _apps(*[(1.0, 10_000)] * 16)
        plan = planner.plan(apps)
        assert not plan.exact
        assert plan.total_kg <= min(plan.all_fpga_kg, plan.all_asic_kg) + 1e-6

    def test_fleet_plan_assignment_roundtrip(self):
        plan = FleetPlan(("a",), ("b",), 1.0, 2.0, 3.0, True)
        assert plan.assignment() == {"a": "fpga", "b": "asic"}
        assert plan.savings_vs_best_uniform_kg == pytest.approx(1.0)

    def test_shared_embodied_sized_by_max_volume(self, planner):
        """The shared FPGA fleet must cover the largest FPGA-assigned app."""
        small = planner._fpga_shared_embodied(10_000)
        large = planner._fpga_shared_embodied(1_000_000)
        assert large > small
