"""Tests for the Scenario definition."""

import pytest

from repro.core.scenario import Scenario
from repro.errors import ParameterError


def test_scalar_lifetime_expands():
    s = Scenario(num_apps=3, app_lifetime_years=2.0)
    assert s.lifetimes == (2.0, 2.0, 2.0)
    assert s.total_application_years == 6.0


def test_sequence_lifetimes():
    s = Scenario(num_apps=3, app_lifetime_years=[1.0, 2.0, 3.0])
    assert s.lifetimes == (1.0, 2.0, 3.0)
    assert s.total_application_years == 6.0


def test_sequence_length_mismatch():
    with pytest.raises(ParameterError):
        Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0, 3.0])


def test_horizon_defaults_to_total_years():
    s = Scenario(num_apps=4, app_lifetime_years=2.0)
    assert s.horizon_years == 8.0


def test_horizon_override():
    s = Scenario(num_apps=1, app_lifetime_years=1.0, evaluation_years=30.0)
    assert s.horizon_years == 30.0


def test_validation():
    with pytest.raises(ParameterError):
        Scenario(num_apps=0)
    with pytest.raises(ParameterError):
        Scenario(volume=0)
    with pytest.raises(ParameterError):
        Scenario(app_lifetime_years=0.0)
    with pytest.raises(ParameterError):
        Scenario(evaluation_years=-1.0)
    with pytest.raises(ParameterError):
        Scenario(app_size_mgates=0.0)


def test_with_num_apps():
    s = Scenario(num_apps=2, app_lifetime_years=1.5, volume=100)
    s2 = s.with_num_apps(5)
    assert s2.num_apps == 5
    assert s2.lifetimes == (1.5,) * 5
    assert s2.volume == 100
    assert s.num_apps == 2  # original untouched


def test_with_num_apps_rejects_heterogeneous_lifetimes():
    s = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0])
    with pytest.raises(ParameterError):
        s.with_num_apps(3)


def test_with_lifetime_and_volume():
    s = Scenario(num_apps=2, app_lifetime_years=1.0, volume=10)
    assert s.with_lifetime(3.0).lifetimes == (3.0, 3.0)
    assert s.with_volume(999).volume == 999


def test_enforce_chip_lifetime_default_off():
    assert Scenario().enforce_chip_lifetime is False


def test_copies_preserve_enforce_flag():
    s = Scenario(num_apps=2, app_lifetime_years=1.0, enforce_chip_lifetime=True)
    assert s.with_num_apps(4).enforce_chip_lifetime is True
    assert s.with_volume(5).enforce_chip_lifetime is True
