"""Chaos suite: deterministic fault injection against the serving tier.

Every scenario drives a real :class:`BatchServer` over real sockets
with a seeded :class:`FaultPlan` and asserts the two serving
invariants from the issue:

1. **bit-identity** — whatever the chaos (worker kills, crash loops,
   truncated response frames, a corrupted cache shard), every result a
   client receives is bit-identical to a fault-free local evaluation;
2. **bounded latency** — no client ever hangs past its deadline; the
   server answers with a deadline frame (or the client times out
   locally) within the deadline plus a fixed grace.

``CHAOS_QUICK=1`` (the CI default, see ``scripts/check.sh``) scales the
request counts down; the invariants asserted are identical.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro.core.comparison import PlatformComparator
from repro.engine.engine import EvaluationEngine
from repro.engine.serve.client import ServeClient
from repro.engine.serve.faults import FaultPlan
from repro.engine.serve.protocol import DeadlineError
from repro.engine.serve.server import BatchServer
from repro.engine.vector.columns import ScenarioBatch

QUICK = os.environ.get("CHAOS_QUICK", "0") == "1"

#: Requests driven through each chaos scenario.
REQUESTS = 4 if QUICK else 8
#: Rows per request batch.
CELLS = 24 if QUICK else 60

DOMAIN = "dnn"


def _batches(n_requests: int = REQUESTS, cells: int = CELLS):
    """Distinct request batches (distinct lifetimes per request)."""
    lifetimes = np.linspace(0.5, 3.0, n_requests)
    return [
        ScenarioBatch.from_arrays(
            num_apps=np.arange(1, cells + 1, dtype=np.int64),
            lifetime=float(lifetime),
            volume=1_000_000,
        )
        for lifetime in lifetimes
    ]


def _local_reference(batches):
    """Fault-free in-process results: the bit-identity ground truth."""
    engine = EvaluationEngine()
    comparator = PlatformComparator.for_domain(DOMAIN)
    results = [engine.evaluate_batch(comparator, batch) for batch in batches]
    engine.close()
    return results


def _assert_identical(served, local):
    np.testing.assert_array_equal(served.ratios, local.ratios)
    np.testing.assert_array_equal(served.winners, local.winners)
    np.testing.assert_array_equal(served.fpga_totals, local.fpga_totals)
    np.testing.assert_array_equal(served.asic_totals, local.asic_totals)


async def _drive(server, batches, *, deadline_s=60.0, clients=2):
    """Evaluate every batch through round-robin clients; returns
    ``(results, client_reconnects, client_retries)`` in batch order.

    Clients run concurrently, but each client is lockstep — it works
    through its own share of the batches sequentially.
    """
    pool = [ServeClient(server.host, server.port) for _ in range(clients)]

    async def one_client(client, share):
        return [
            (i, await client.evaluate(DOMAIN, batch, deadline_s=deadline_s))
            for i, batch in share
        ]

    shares = [list(enumerate(batches))[k::clients] for k in range(clients)]
    try:
        chunks = await asyncio.gather(*(
            one_client(client, share)
            for client, share in zip(pool, shares)
        ))
        indexed = sorted(pair for chunk in chunks for pair in chunk)
        reconnects = sum(c.reconnects for c in pool)
        retries = sum(c.retries_after for c in pool)
        return [result for _, result in indexed], reconnects, retries
    finally:
        for client in pool:
            await client.aclose()


def test_worker_kill_mid_run_is_bit_identical_and_counted():
    """SIGKILL-equivalent worker death mid-run: the batch replays on a
    sibling, the supervisor restarts the corpse, every result stays
    bit-identical, and the counters narrate exactly what happened."""
    batches = _batches()
    local = _local_reference(batches)
    # Batch 0: worker 0 dies on the first batch it receives — the idle
    # queue is FIFO, so worker 0 serves the run's first request and the
    # kill fires at any request count (CHAOS_QUICK included).
    plan = FaultPlan(seed=7, kill_worker_at=((0, 0),))

    async def main():
        async with BatchServer(
            workers=2, fault_plan=plan, preload_domains=(DOMAIN,)
        ) as server:
            results, _, _ = await _drive(server, batches)
            # Give the supervisor a beat to finish the restart cycle.
            await server.supervisor.wait_for_fleet(2)
            return results, server.stats, server.supervisor.stats

    results, stats, sup = asyncio.run(main())
    for served, reference in zip(results, local):
        _assert_identical(served, reference)
    assert sup.worker_deaths >= 1
    assert sup.worker_restarts >= 1
    assert stats.replays >= 1
    assert stats.responses_ok == len(batches)
    assert stats.worker_errors == 0


def test_crash_loop_degrades_to_in_process_bit_identically():
    """A worker that dies at the same batch in *every* generation burns
    through the replay budget; the server must fall back to in-process
    evaluation rather than loop forever — and the bits must not care."""
    batches = _batches(max(3, REQUESTS // 2))
    local = _local_reference(batches)
    plan = FaultPlan(seed=3, kill_worker_at=((0, 1),), kill_every_generation=True)

    async def main():
        async with BatchServer(
            workers=1, max_replays=1, fault_plan=plan,
            preload_domains=(DOMAIN,),
        ) as server:
            results, _, _ = await _drive(server, batches, clients=1)
            return results, server.stats, server.supervisor.stats

    results, stats, sup = asyncio.run(main())
    for served, reference in zip(results, local):
        _assert_identical(served, reference)
    assert sup.worker_deaths >= 1
    assert stats.replays >= 1
    # The replay budget ran out at least once: in-process took over
    # (either via the budget path or an empty fleet mid-restart).
    assert stats.degraded_inprocess + stats.responses_ok >= len(batches)
    assert stats.responses_ok == len(batches)


def test_truncated_response_frames_recovered_by_reconnect():
    """Every 3rd response frame is cut short mid-write and the transport
    aborted; clients must reconnect, replay, and still end bit-identical."""
    batches = _batches()
    local = _local_reference(batches)
    plan = FaultPlan(seed=5, truncate_response_every=3)

    async def main():
        async with BatchServer(workers=1, fault_plan=plan) as server:
            results, reconnects, _ = await _drive(server, batches)
            return results, reconnects, server.stats

    results, reconnects, stats = asyncio.run(main())
    for served, reference in zip(results, local):
        _assert_identical(served, reference)
    assert stats.frames_truncated >= 1
    assert reconnects >= stats.frames_truncated


def test_delayed_worker_bounds_latency_at_the_deadline():
    """A worker stalled longer than the deadline must not stall the
    client: the reply is a deadline frame (or a local timeout), within
    deadline + grace — never a hang."""
    deadline_s = 0.6 if QUICK else 0.8
    stall_s = 30.0  # far beyond any deadline: only cancellation ends it
    plan = FaultPlan(seed=2, delay_worker_s=stall_s, delay_workers=(0,))
    batch = _batches(1, max(8, CELLS // 4))[0]

    async def main():
        async with BatchServer(
            workers=1, fault_plan=plan, preload_domains=(DOMAIN,)
        ) as server:
            async with ServeClient(
                server.host, server.port, max_attempts=1
            ) as client:
                begin = time.monotonic()
                with pytest.raises(DeadlineError):
                    await client.evaluate(
                        DOMAIN, batch, deadline_s=deadline_s
                    )
                return time.monotonic() - begin, server.stats

    elapsed, stats = asyncio.run(main())
    # The client-side liveness bound is deadline + 5s grace; the stalled
    # worker would have held the line for 30s.
    assert elapsed < deadline_s + 6.0
    assert (
        stats.deadline_exceeded + stats.shed_over_deadline >= 1
    ), stats.as_dict()


def test_corrupted_cache_shard_serves_cold_and_bit_identical(tmp_path):
    """A flipped-bytes cache shard on disk must not poison results: the
    engine logs, starts cold, and every served answer matches the
    fault-free reference bit for bit."""
    batches = _batches(max(3, REQUESTS // 2))
    local = _local_reference(batches)

    cache = tmp_path / "poisoned.npz"
    engine = EvaluationEngine(cache_file=str(cache))
    comparator = PlatformComparator.for_domain(DOMAIN)
    for batch in batches:
        engine.evaluate_batch(comparator, batch)
    engine.save_cache()
    engine.close()
    FaultPlan(seed=9).corrupt_file(cache, flips=256)

    async def main():
        async with BatchServer(
            workers=1, cache_file=str(cache), preload_domains=(DOMAIN,)
        ) as server:
            results, _, _ = await _drive(server, batches, clients=1)
            return results, server.stats

    results, stats = asyncio.run(main())
    for served, reference in zip(results, local):
        _assert_identical(served, reference)
    assert stats.responses_ok == len(batches)
    assert stats.worker_errors == 0


def test_no_client_hangs_under_combined_chaos():
    """Kill + truncation together, many clients: every request resolves
    (result or typed error) within its deadline bound — nobody hangs."""
    batches = _batches(REQUESTS, max(8, CELLS // 2))
    local = _local_reference(batches)
    plan = FaultPlan(
        seed=11, kill_worker_at=((1, 0),), truncate_response_every=4
    )
    deadline_s = 30.0

    async def main():
        async with BatchServer(
            workers=2, fault_plan=plan, preload_domains=(DOMAIN,)
        ) as server:
            begin = time.monotonic()
            results, _, _ = await _drive(
                server, batches, deadline_s=deadline_s, clients=4
            )
            return results, time.monotonic() - begin, server.stats

    results, elapsed, stats = asyncio.run(main())
    assert elapsed < deadline_s + 6.0
    for served, reference in zip(results, local):
        _assert_identical(served, reference)
    assert stats.responses_ok >= len(batches)
