"""Tests for carbon-aware design-space exploration."""

import pytest

from repro.analysis.dse import explore
from repro.config import Parameters
from repro.core.scenario import Scenario
from repro.errors import ParameterError

SCENARIO = Scenario(num_apps=3, app_lifetime_years=1.0, volume=50_000)


@pytest.fixture(scope="module")
def result():
    grid = {
        "use_energy_source": ["wind", "coal"],
        "recycled_material_fraction": [0.0, 1.0],
    }
    return explore("dnn", SCENARIO, grid)


def test_grid_cartesian_product(result):
    assert len(result.points) == 4


def test_rows_carry_overrides(result):
    row = result.points[0].as_row()
    assert "use_energy_source" in row
    assert "ratio" in row and "winner" in row


def test_best_is_minimum(result):
    best = result.best()
    assert best.best_total_kg == min(p.best_total_kg for p in result.points)


def test_ranked_order(result):
    ranked = result.ranked()
    values = [p.best_total_kg for p in ranked]
    assert values == sorted(values)


def test_wind_beats_coal(result):
    by_source = {}
    for point in result.points:
        if point.overrides["recycled_material_fraction"] == 0.0:
            by_source[point.overrides["use_energy_source"]] = point.best_total_kg
    assert by_source["wind"] < by_source["coal"]


def test_pareto_front_non_dominated(result):
    front = result.pareto_front()
    assert front
    for candidate in front:
        for other in result.points:
            dominates = (
                other.fpga_total_kg <= candidate.fpga_total_kg
                and other.asic_total_kg <= candidate.asic_total_kg
                and (
                    other.fpga_total_kg < candidate.fpga_total_kg
                    or other.asic_total_kg < candidate.asic_total_kg
                )
            )
            assert not dominates


def test_pareto_single_objective_is_best(result):
    front = result.pareto_front(objectives=("best_total_kg",))
    assert len({p.best_total_kg for p in front}) == 1
    assert front[0].best_total_kg == result.best().best_total_kg


def test_custom_base_parameters():
    grid = {"duty_cycle": [0.1, 0.9]}
    base = Parameters().with_overrides(use_energy_source="coal")
    result = explore("crypto", SCENARIO, grid, base=base)
    assert len(result.points) == 2
    low, high = sorted(result.points, key=lambda p: p.overrides["duty_cycle"])
    assert high.fpga_total_kg > low.fpga_total_kg


def test_empty_grid_rejected():
    with pytest.raises(ParameterError):
        explore("dnn", SCENARIO, {})


def test_empty_objectives_rejected(result):
    with pytest.raises(ParameterError):
        result.pareto_front(objectives=())


def test_design_points_are_hashable(result):
    """Frozen overrides make points usable in sets and as dict keys."""
    unique = set(result.points)
    assert len(unique) == len(result.points)
    ranked_by_point = {point: rank for rank, point in enumerate(result.ranked())}
    assert len(ranked_by_point) == len(result.points)


def test_overrides_behave_like_a_read_only_mapping(result):
    point = result.points[0]
    overrides = point.overrides
    assert overrides["use_energy_source"] in ("wind", "coal")
    assert set(overrides) == {"use_energy_source", "recycled_material_fraction"}
    assert dict(overrides) == {k: overrides[k] for k in overrides}
    with pytest.raises(TypeError):
        overrides["use_energy_source"] = "solar"


def test_overrides_equal_plain_dicts(result):
    point = result.points[0]
    assert point.overrides == dict(point.overrides)


def test_overrides_equality_and_hash_ignore_key_order():
    from repro.analysis.dse import FrozenOverrides

    a = FrozenOverrides({"x": 1, "y": 2})
    b = FrozenOverrides({"y": 2, "x": 1})
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_overrides_reject_duplicate_keys():
    from repro.analysis.dse import FrozenOverrides

    with pytest.raises(ParameterError):
        FrozenOverrides([("x", 1), ("x", 2)])


def test_pareto_front_matches_quadratic_reference(result):
    """The sort-based pass must agree with the all-pairs definition."""

    def values(p, objectives):
        return tuple(float(getattr(p, o)) for o in objectives)

    for objectives in (("fpga_total_kg", "asic_total_kg"), ("best_total_kg",),
                       ("fpga_total_kg", "asic_total_kg", "ratio")):
        front = result.pareto_front(objectives=objectives)
        reference = []
        for candidate in result.points:
            c_vals = values(candidate, objectives)
            dominated = any(
                all(o <= c for o, c in zip(values(other, objectives), c_vals))
                and any(o < c for o, c in zip(values(other, objectives), c_vals))
                for other in result.points
                if other is not candidate
            )
            if not dominated:
                reference.append(candidate)
        assert set(front) == set(reference)


def test_explore_reuses_memoised_suites(result):
    """Identical parameter combinations share one suite object."""
    from repro.engine import build_suite_cached
    from repro.config import Parameters

    params = Parameters().with_overrides(use_energy_source="wind",
                                         recycled_material_fraction=0.0)
    assert build_suite_cached(params) is build_suite_cached(params)
