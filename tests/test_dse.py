"""Tests for carbon-aware design-space exploration."""

import pytest

from repro.analysis.dse import explore
from repro.config import Parameters
from repro.core.scenario import Scenario
from repro.errors import ParameterError

SCENARIO = Scenario(num_apps=3, app_lifetime_years=1.0, volume=50_000)


@pytest.fixture(scope="module")
def result():
    grid = {
        "use_energy_source": ["wind", "coal"],
        "recycled_material_fraction": [0.0, 1.0],
    }
    return explore("dnn", SCENARIO, grid)


def test_grid_cartesian_product(result):
    assert len(result.points) == 4


def test_rows_carry_overrides(result):
    row = result.points[0].as_row()
    assert "use_energy_source" in row
    assert "ratio" in row and "winner" in row


def test_best_is_minimum(result):
    best = result.best()
    assert best.best_total_kg == min(p.best_total_kg for p in result.points)


def test_ranked_order(result):
    ranked = result.ranked()
    values = [p.best_total_kg for p in ranked]
    assert values == sorted(values)


def test_wind_beats_coal(result):
    by_source = {}
    for point in result.points:
        if point.overrides["recycled_material_fraction"] == 0.0:
            by_source[point.overrides["use_energy_source"]] = point.best_total_kg
    assert by_source["wind"] < by_source["coal"]


def test_pareto_front_non_dominated(result):
    front = result.pareto_front()
    assert front
    for candidate in front:
        for other in result.points:
            dominates = (
                other.fpga_total_kg <= candidate.fpga_total_kg
                and other.asic_total_kg <= candidate.asic_total_kg
                and (
                    other.fpga_total_kg < candidate.fpga_total_kg
                    or other.asic_total_kg < candidate.asic_total_kg
                )
            )
            assert not dominates


def test_pareto_single_objective_is_best(result):
    front = result.pareto_front(objectives=("best_total_kg",))
    assert len({p.best_total_kg for p in front}) == 1
    assert front[0].best_total_kg == result.best().best_total_kg


def test_custom_base_parameters():
    grid = {"duty_cycle": [0.1, 0.9]}
    base = Parameters().with_overrides(use_energy_source="coal")
    result = explore("crypto", SCENARIO, grid, base=base)
    assert len(result.points) == 2
    low, high = sorted(result.points, key=lambda p: p.overrides["duty_cycle"])
    assert high.fpga_total_kg > low.fpga_total_kg


def test_empty_grid_rejected():
    with pytest.raises(ParameterError):
        explore("dnn", SCENARIO, {})


def test_empty_objectives_rejected(result):
    with pytest.raises(ParameterError):
        result.pareto_front(objectives=())
