"""Tests for /proc-based process-tree RSS measurement.

The sampler's contract is *never crash the workload it observes*: a
process can exit between directory listing and the ``status`` read, a
``status`` file can be garbled mid-write, ``/proc`` itself can be
absent (non-Linux).  These tests drive all of those through a fake proc
directory (monkeypatched ``_PROC``) so every race is deterministic.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine import resources
from repro.engine.resources import (
    PeakRssSampler,
    _parent_map,
    _vm_rss_kb,
    process_tree_pids,
    process_tree_rss_mb,
)


def _add_proc(root: Path, pid: int, ppid: int, rss_kb: "int | None") -> None:
    """One fake /proc/<pid> entry with stat (ppid) and optional status."""
    entry = root / str(pid)
    entry.mkdir()
    # comm contains parens+spaces on purpose: ppid parsing must split
    # after the *last* ')'.
    (entry / "stat").write_bytes(
        f"{pid} (fake (proc) worker) S {ppid} 0 0".encode()
    )
    if rss_kb is not None:
        (entry / "status").write_bytes(
            f"Name:\tfake\nVmRSS:\t{rss_kb} kB\nThreads:\t1\n".encode()
        )


@pytest.fixture
def fake_proc(tmp_path, monkeypatch):
    """A fake proc tree rooted at the real pid: self + two children."""
    me = os.getpid()
    _add_proc(tmp_path, me, 1, 2048)
    _add_proc(tmp_path, 900_001, me, 1024)
    _add_proc(tmp_path, 900_002, me, 512)
    monkeypatch.setattr(resources, "_PROC", str(tmp_path))
    return tmp_path


def test_vm_rss_reads_fake_status(fake_proc):
    assert _vm_rss_kb(os.getpid()) == 2048
    assert _vm_rss_kb(900_001) == 1024


def test_vm_rss_vanished_pid_is_zero(fake_proc):
    """The entry disappearing between discovery and read reads as 0."""
    assert _vm_rss_kb(123_456_789) == 0


def test_vm_rss_garbled_status_is_zero(fake_proc):
    """A status file caught mid-write (short or non-numeric VmRSS line)
    counts as gone, never an exception."""
    (fake_proc / "900001" / "status").write_bytes(b"VmRSS:\n")
    assert _vm_rss_kb(900_001) == 0
    (fake_proc / "900001" / "status").write_bytes(b"VmRSS:\tnot-a-number kB\n")
    assert _vm_rss_kb(900_001) == 0


def test_vm_rss_status_missing_but_dir_present_is_zero(fake_proc):
    """A zombie-ish entry: stat listed the pid, status already gone."""
    (fake_proc / "900002" / "status").unlink()
    assert _vm_rss_kb(900_002) == 0
    # The tree sum still works, counting the corpse as 0.
    assert process_tree_rss_mb() == pytest.approx((2048 + 1024) / 1024.0)


def test_parent_map_skips_corrupt_and_foreign_entries(fake_proc):
    (fake_proc / "900003").mkdir()
    (fake_proc / "900003" / "stat").write_bytes(b"garbage with no parens")
    (fake_proc / "not-a-pid").mkdir()  # non-numeric /proc entries exist
    parents = _parent_map()
    assert parents[900_001] == os.getpid()
    assert parents[900_002] == os.getpid()
    assert 900_003 not in parents


def test_process_tree_includes_descendants(fake_proc):
    _add_proc(fake_proc, 900_010, 900_001, 256)  # grandchild
    pids = process_tree_pids()
    assert set(pids) == {os.getpid(), 900_001, 900_002, 900_010}


def test_process_tree_rss_sums_megabytes(fake_proc):
    assert process_tree_rss_mb() == pytest.approx(
        (2048 + 1024 + 512) / 1024.0
    )


def test_proc_absent_degrades_to_zero(tmp_path, monkeypatch):
    """No /proc at all (non-Linux): empty map, zero RSS, no exception."""
    monkeypatch.setattr(resources, "_PROC", str(tmp_path / "nope"))
    assert _parent_map() == {}
    assert process_tree_pids() == [os.getpid()]
    assert process_tree_rss_mb() == 0.0
    with PeakRssSampler(interval_s=0.01) as sampler:
        pass
    assert sampler.peak_mb == 0.0


def test_peak_sampler_tracks_fake_tree_peak(fake_proc):
    import shutil
    import time

    with PeakRssSampler(interval_s=0.005) as sampler:
        # A short-lived memory spike: new child appears...
        _add_proc(fake_proc, 900_020, os.getpid(), 8192)
        time.sleep(0.05)
        # ...then dies mid-phase — its directory vanishes while the
        # sampler thread may be iterating; the sampler must neither
        # crash nor forget the peak it saw.
        shutil.rmtree(fake_proc / "900020")
        time.sleep(0.03)
    spike = (2048 + 1024 + 512 + 8192) / 1024.0
    rest = (2048 + 1024 + 512) / 1024.0
    assert sampler.peak_mb == pytest.approx(spike)
    assert process_tree_rss_mb() == pytest.approx(rest)


def test_peak_sampler_reusable_and_monotonic_within_phase(fake_proc):
    sampler = PeakRssSampler(interval_s=0.005)
    with sampler:
        pass
    first = sampler.peak_mb
    assert first > 0.0
    with sampler:  # reuse resets the peak for the new phase
        pass
    assert sampler.peak_mb == pytest.approx(first)
