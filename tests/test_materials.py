"""Tests for Eq. (5) recycled-material blending."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.nodes import get_node
from repro.errors import ParameterError
from repro.manufacturing.materials import (
    blended_mpa_kg_per_cm2,
    recycled_material_savings_kg_per_cm2,
)


def test_rho_zero_gives_new_material():
    node = get_node("10nm")
    assert blended_mpa_kg_per_cm2(node, 0.0) == node.mpa_new_kg_per_cm2


def test_rho_one_gives_recycled_material():
    node = get_node("10nm")
    assert blended_mpa_kg_per_cm2(node, 1.0) == node.mpa_recycled_kg_per_cm2


def test_midpoint_is_average():
    node = get_node("10nm")
    expected = 0.5 * (node.mpa_new_kg_per_cm2 + node.mpa_recycled_kg_per_cm2)
    assert blended_mpa_kg_per_cm2(node, 0.5) == pytest.approx(expected)


@given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_blend_bounded_by_endpoints(rho):
    node = get_node("7nm")
    blended = blended_mpa_kg_per_cm2(node, rho)
    assert node.mpa_recycled_kg_per_cm2 <= blended <= node.mpa_new_kg_per_cm2


@given(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_blend_monotone_decreasing_in_rho(rho_a, rho_b):
    node = get_node("7nm")
    lo, hi = sorted((rho_a, rho_b))
    assert blended_mpa_kg_per_cm2(node, hi) <= blended_mpa_kg_per_cm2(node, lo)


def test_savings_positive_and_linear():
    node = get_node("10nm")
    assert recycled_material_savings_kg_per_cm2(node, 0.0) == 0.0
    full = recycled_material_savings_kg_per_cm2(node, 1.0)
    half = recycled_material_savings_kg_per_cm2(node, 0.5)
    assert half == pytest.approx(full / 2.0)


def test_rho_out_of_range_rejected():
    node = get_node("10nm")
    with pytest.raises(ParameterError):
        blended_mpa_kg_per_cm2(node, 1.5)
    with pytest.raises(ParameterError):
        blended_mpa_kg_per_cm2(node, -0.1)
