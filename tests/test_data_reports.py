"""Tests for the design-house report dataset."""

import pytest

from repro.config import TABLE1_RANGES
from repro.data.reports import DEFAULT_REPORT, get_report, list_reports
from repro.errors import UnknownEntityError


def test_default_report_exists():
    assert DEFAULT_REPORT in list_reports()


def test_reports_within_table1_ranges():
    energy_range = TABLE1_RANGES["design_energy_gwh"]
    employee_range = TABLE1_RANGES["design_house_employees"]
    project_range = TABLE1_RANGES["project_years"]
    for name in list_reports():
        report = get_report(name)
        assert energy_range.contains(report.annual_energy_gwh), name
        assert employee_range.contains(float(report.total_employees)), name
        assert project_range.contains(report.typical_project_years), name


def test_energy_per_employee_year():
    report = get_report("design_house_b")
    expected = 7.3e6 / 26_000
    assert report.energy_kwh_per_employee_year() == pytest.approx(expected)


def test_unknown_report():
    with pytest.raises(UnknownEntityError):
        get_report("design_house_z")


def test_renewable_fraction_is_fraction():
    for name in list_reports():
        assert 0.0 <= get_report(name).renewable_fraction <= 1.0
