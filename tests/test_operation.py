"""Tests for the operational (use-phase) model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.operation.energy import OperatingProfile, annual_use_energy_kwh
from repro.operation.model import OperationModel


class TestOperatingProfile:
    def test_effective_duty_composition(self):
        profile = OperatingProfile(duty_cycle=0.5, idle_fraction_of_peak=0.2, pue=1.5)
        # (0.5 + 0.5*0.2) * 1.5 = 0.9
        assert profile.effective_duty() == pytest.approx(0.9)

    def test_always_on_no_idle_no_pue(self):
        profile = OperatingProfile(duty_cycle=1.0, idle_fraction_of_peak=0.0, pue=1.0)
        assert profile.effective_duty() == pytest.approx(1.0)

    def test_rejects_bad_duty(self):
        with pytest.raises(ParameterError):
            OperatingProfile(duty_cycle=1.5)

    def test_rejects_bad_pue(self):
        with pytest.raises(ParameterError):
            OperatingProfile(pue=0.0)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_idle_power_only_adds(self, duty, idle):
        with_idle = OperatingProfile(duty, idle, 1.0).effective_duty()
        without = OperatingProfile(duty, 0.0, 1.0).effective_duty()
        assert with_idle >= without


class TestEnergy:
    def test_known_value(self):
        profile = OperatingProfile(duty_cycle=1.0, idle_fraction_of_peak=0.0, pue=1.0)
        assert annual_use_energy_kwh(1000.0, profile) == pytest.approx(8760.0)

    def test_zero_power(self):
        assert annual_use_energy_kwh(0.0, OperatingProfile()) == 0.0

    @given(st.floats(min_value=0.0, max_value=1000.0))
    def test_linear_in_power(self, power):
        profile = OperatingProfile()
        one = annual_use_energy_kwh(1.0, profile)
        assert annual_use_energy_kwh(power, profile) == pytest.approx(one * power)


class TestOperationModel:
    def test_op_equals_intensity_times_energy(self):
        model = OperationModel(energy_source="world")
        result = model.assess_chip_year(100.0)
        assert result.kg_per_year == pytest.approx(
            result.energy_kwh_per_year * 0.475
        )

    def test_cleaner_grid_lower_op(self):
        dirty = OperationModel(energy_source="coal")
        clean = OperationModel(energy_source="hydro")
        assert clean.per_chip_year_kg(100.0) < dirty.per_chip_year_kg(100.0)

    def test_lifetime_scaling(self):
        model = OperationModel()
        assert model.over_lifetime_kg(50.0, 6.0) == pytest.approx(
            6.0 * model.per_chip_year_kg(50.0)
        )

    def test_numeric_intensity_accepted(self):
        model = OperationModel(energy_source=100.0)  # 100 g/kWh
        result = model.assess_chip_year(10.0)
        assert result.carbon_intensity_kg_per_kwh == pytest.approx(0.1)

    def test_rejects_negative_power(self):
        with pytest.raises(ParameterError):
            OperationModel().assess_chip_year(-1.0)

    def test_rejects_negative_years(self):
        with pytest.raises(ParameterError):
            OperationModel().over_lifetime_kg(10.0, -1.0)
