"""Tests for the ModelSuite bundle."""

import pytest

from repro.appdev.model import DevelopmentEffort
from repro.core.suite import ModelSuite
from repro.eol.model import EolModel
from repro.manufacturing.act import ManufacturingModel


def test_default_constructs_all_submodels():
    suite = ModelSuite.default()
    assert suite.manufacturing is not None
    assert suite.packaging is not None
    assert suite.design is not None
    assert suite.eol is not None
    assert suite.operation is not None
    assert suite.appdev is not None


def test_default_asic_effort_is_zero():
    """Paper: ASIC T_FE = T_BE = 0 (folded into the chip project)."""
    suite = ModelSuite.default()
    assert suite.asic_effort.per_application_hours() == 0.0
    assert suite.fpga_effort.per_application_hours() > 0.0


def test_with_overrides_replaces_only_named():
    suite = ModelSuite.default()
    custom = suite.with_overrides(eol=EolModel(recycled_fraction=0.9))
    assert custom.eol.recycled_fraction == 0.9
    assert custom.manufacturing is suite.manufacturing
    assert suite.eol.recycled_fraction != 0.9


def test_with_overrides_rejects_unknown_field():
    with pytest.raises(TypeError):
        ModelSuite.default().with_overrides(refrigeration="freon")


def test_suite_is_immutable():
    suite = ModelSuite.default()
    with pytest.raises(AttributeError):
        suite.manufacturing = ManufacturingModel()


def test_efforts_configurable():
    suite = ModelSuite.default().with_overrides(
        fpga_effort=DevelopmentEffort(frontend_months=2.5, backend_months=1.5)
    )
    assert suite.fpga_effort.frontend_months == 2.5
