"""Tests for the columnar parameter-space pipeline.

Covers the :class:`ParameterBatch` digest contract (vectorised column
folds bit-reproduced by the scalar folds), store round-trips of
parameter-space rows, mixed scenario-row + parameter-row eviction,
chunked multi-core dispatch parity, and the fully columnar
Monte-Carlo/DSE/tornado routes against the scalar object path.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.dse import explore, explore_batch
from repro.analysis.montecarlo import (
    ColumnSamples,
    ParameterDistribution,
    monte_carlo,
    monte_carlo_batch,
)
from repro.analysis.sensitivity import tornado
from repro.core.scenario import Scenario
from repro.engine import (
    EvaluationEngine,
    ParameterBatch,
    ScenarioBatch,
    pair_digest,
    param_batch_digests,
    param_digest,
    param_row_digest,
)
from repro.engine import engine as engine_module
from repro.engine.vector import extract_row
from repro.engine.vector import params as pcols
from repro.errors import ParameterError
from repro.experiments.ext_uncertainty import distributions as table1_distributions
from repro.operation.model import OperationModel
from repro.units import g_per_kwh_to_kg_per_kwh


def _set_use_intensity(comparator, value):
    suite = comparator.suite.with_overrides(
        operation=OperationModel(
            energy_source=value, profile=comparator.suite.operation.profile
        )
    )
    return dataclasses.replace(comparator, suite=suite)


def _use_intensity_cols(params, values):
    params.set_col(pcols.OP_CI, g_per_kwh_to_kg_per_kwh(values))


@pytest.fixture
def intensity_dist():
    return ParameterDistribution(
        "use_intensity", 30.0, 700.0, _set_use_intensity,
        kind="loguniform", apply_column=_use_intensity_cols,
    )


@pytest.fixture
def scenario():
    return Scenario(num_apps=3, app_lifetime_years=1.0, volume=10_000)


# ----------------------------------------------------------------------
# Digest contract: scalar folds bit-reproduce the vectorised folds
# ----------------------------------------------------------------------


def test_base_mode_digest_scalar_vector_parity(dnn_comparator, scenario):
    n = 64
    rng = np.random.default_rng(5)
    values = rng.uniform(0.03, 0.7, n)
    params = ParameterBatch.from_comparator(dnn_comparator, n)
    params.set_col(pcols.OP_CI, values)
    params.set_col(pcols.EOL_DELTA, 0.5)  # broadcast override
    batch = ScenarioBatch.tile(scenario, n)
    lo, hi = param_batch_digests(params, batch)
    for i in (0, 13, n - 1):
        expected = param_digest(
            dnn_comparator, scenario,
            {pcols.OP_CI: float(values[i]), pcols.EOL_DELTA: 0.5},
        )
        assert (int(lo[i]), int(hi[i])) == expected


def test_base_mode_digest_without_overrides_matches_pair_digest(
    dnn_comparator, scenario
):
    """An unperturbed parameter row keys the same store entry as the
    plain scenario-space digest of (base, scenario) — shared warmth."""
    params = ParameterBatch.from_comparator(dnn_comparator, 3)
    batch = ScenarioBatch.tile(scenario, 3)
    lo, hi = param_batch_digests(params, batch)
    expected = pair_digest(dnn_comparator, scenario)
    for i in range(3):
        assert (int(lo[i]), int(hi[i])) == expected
    assert param_digest(dnn_comparator, scenario, {}) == expected


def test_extraction_mode_digest_scalar_vector_parity(dnn_comparator, scenario):
    comparators = [
        _set_use_intensity(dnn_comparator, value)
        for value in (30.0, 150.0, 700.0)
    ]
    params = ParameterBatch.from_comparators(comparators)
    batch = ScenarioBatch.from_scenarios((scenario,) * 3)
    lo, hi = param_batch_digests(params, batch)
    for i, comparator in enumerate(comparators):
        expected = param_row_digest(extract_row(comparator), scenario)
        assert (int(lo[i]), int(hi[i])) == expected


def test_digest_distinguishes_columns_and_values(dnn_comparator, scenario):
    a = param_digest(dnn_comparator, scenario, {pcols.OP_CI: 0.5})
    b = param_digest(dnn_comparator, scenario, {pcols.OP_DUTY: 0.5})
    c = param_digest(dnn_comparator, scenario, {pcols.OP_CI: 0.25})
    assert len({a, b, c}) == 3


def test_param_row_digest_rejects_uncovered_scenarios(dnn_comparator):
    ragged = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=10)
    with pytest.raises(ParameterError):
        param_row_digest(extract_row(dnn_comparator), ragged)


def test_param_batch_digests_rejects_uncovered_rows(dnn_comparator):
    ragged = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=10)
    params = ParameterBatch.from_comparator(dnn_comparator, 2)
    batch = ScenarioBatch.from_scenarios((ragged, ragged))
    with pytest.raises(ParameterError):
        param_batch_digests(params, batch)


# ----------------------------------------------------------------------
# ParameterBatch mechanics
# ----------------------------------------------------------------------


def test_parameter_batch_validates_writes(dnn_comparator):
    params = ParameterBatch.from_comparator(dnn_comparator, 4)
    with pytest.raises(ParameterError):
        params.set_col(pcols.N_PARAM_COLS, np.ones(4))
    with pytest.raises(ParameterError):
        params.set_col(pcols.OP_CI, np.ones(3))  # neither 1 nor n
    with pytest.raises(ParameterError):
        ParameterBatch.from_comparator(dnn_comparator, 0)
    params.set_col(pcols.OP_CI, 0.5)
    assert params.col(pcols.OP_CI).shape == (1,)
    params.set_col(pcols.OP_CI, np.ones(4))
    assert params.col(pcols.OP_CI).shape == (4,)


def test_parameter_batch_slices_share_broadcast_columns(dnn_comparator):
    params = ParameterBatch.from_comparator(dnn_comparator, 10)
    params.set_col(pcols.OP_CI, np.arange(10, dtype=np.float64))
    params.set_col(pcols.EOL_DELTA, 0.5)
    view = params.slice_rows(2, 7)
    assert view.size == 5
    np.testing.assert_array_equal(
        view.col(pcols.OP_CI), np.arange(2.0, 7.0)
    )
    # Per-row slices are views; broadcast columns are shared outright.
    assert view.col(pcols.OP_CI).base is params.col(pcols.OP_CI)
    assert view.col(pcols.EOL_DELTA) is params.col(pcols.EOL_DELTA)
    taken = params.take(np.array([1, 8]))
    np.testing.assert_array_equal(taken.col(pcols.OP_CI), [1.0, 8.0])


def test_scenario_batch_tile_matches_from_scenarios(scenario):
    tiled = ScenarioBatch.tile(scenario, 5)
    listed = ScenarioBatch.from_scenarios((scenario,) * 5)
    for field in ("num_apps", "volume", "lifetime", "evaluation_years",
                  "app_size_mgates", "enforce_chip_lifetime", "covered"):
        np.testing.assert_array_equal(
            getattr(tiled, field), getattr(listed, field)
        )
    assert tiled.scenarios is None  # covered tiles carry no objects
    ragged = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=10)
    uncovered = ScenarioBatch.tile(ragged, 3)
    assert not uncovered.covered.any()
    assert uncovered.scenarios == (ragged,) * 3


# ----------------------------------------------------------------------
# Columnar Monte-Carlo vs the scalar object path
# ----------------------------------------------------------------------


def test_columnar_monte_carlo_matches_scalar_object_path(
    dnn_comparator, scenario
):
    dists = table1_distributions()
    classic = monte_carlo(dnn_comparator, scenario, dists,
                          n_samples=200, seed=11,
                          engine=EvaluationEngine(vectorize=False))
    columnar = monte_carlo_batch(dnn_comparator, scenario, dists,
                                 n_samples=200, seed=11,
                                 engine=EvaluationEngine())
    # Bit-identical draws: the columnar sampler consumes the RNG in the
    # legacy per-draw order.
    assert columnar.samples == classic.samples
    assert isinstance(columnar.samples, ColumnSamples)
    assert set(columnar.sample_columns) == {d.name for d in dists}
    np.testing.assert_allclose(columnar.ratios, classic.ratios,
                               rtol=1.0e-12, atol=0.0)
    np.testing.assert_array_equal(columnar.winners, classic.winners)


def test_columnar_monte_carlo_needs_every_apply_column(
    dnn_comparator, scenario, intensity_dist
):
    """One object-only distribution sends the study down the legacy
    (per-draw comparator) route — results must still agree."""
    object_only = dataclasses.replace(intensity_dist, apply_column=None)
    legacy = monte_carlo_batch(dnn_comparator, scenario, [object_only],
                               n_samples=40, seed=3,
                               engine=EvaluationEngine())
    columnar = monte_carlo_batch(dnn_comparator, scenario, [intensity_dist],
                                 n_samples=40, seed=3,
                                 engine=EvaluationEngine())
    assert legacy.sample_columns is None
    assert columnar.sample_columns is not None
    np.testing.assert_allclose(columnar.ratios, legacy.ratios,
                               rtol=1.0e-12, atol=0.0)


def test_columnar_monte_carlo_uncovered_scenario_takes_object_route(
    dnn_comparator, intensity_dist
):
    ragged = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=10)
    classic = monte_carlo(dnn_comparator, ragged, [intensity_dist],
                          n_samples=10, seed=5,
                          engine=EvaluationEngine(vectorize=False))
    batch = monte_carlo_batch(dnn_comparator, ragged, [intensity_dist],
                              n_samples=10, seed=5,
                              engine=EvaluationEngine())
    assert batch.sample_columns is None  # legacy route
    np.testing.assert_allclose(batch.ratios, classic.ratios,
                               rtol=1.0e-12, atol=0.0)


def test_sample_column_matches_sequential_draws(intensity_dist):
    a = np.random.default_rng(9)
    b = np.random.default_rng(9)
    column = intensity_dist.sample_column(a, 50)
    scalars = np.array([intensity_dist.sample(b) for _ in range(50)])
    np.testing.assert_array_equal(column, scalars)


def test_column_samples_sequence_semantics():
    columns = {"a": np.array([1.0, 2.0, 3.0]), "b": np.array([4.0, 5.0, 6.0])}
    samples = ColumnSamples(columns)
    assert len(samples) == 3
    assert samples[1] == {"a": 2.0, "b": 5.0}
    assert samples[-1] == {"a": 3.0, "b": 6.0}
    assert samples[1:] == ({"a": 2.0, "b": 5.0}, {"a": 3.0, "b": 6.0})
    assert samples == tuple({"a": float(i + 1), "b": float(i + 4)}
                            for i in range(3))
    assert samples != ({"a": 1.0, "b": 4.0},) * 3
    with pytest.raises(IndexError):
        samples[3]


# ----------------------------------------------------------------------
# Store round-trips of parameter-space rows
# ----------------------------------------------------------------------


def test_param_rows_are_cached_and_persisted(dnn_comparator, scenario,
                                             intensity_dist, tmp_path):
    engine = EvaluationEngine(cache_size=4096)
    first = monte_carlo_batch(dnn_comparator, scenario, [intensity_dist],
                              n_samples=100, seed=7, engine=engine)
    computed = engine.rows_computed
    assert computed == 100
    # Same seeded study again: pure store gather, nothing recomputed.
    second = monte_carlo_batch(dnn_comparator, scenario, [intensity_dist],
                               n_samples=100, seed=7, engine=engine)
    assert engine.rows_computed == computed
    np.testing.assert_array_equal(first.ratios, second.ratios)

    # Parameter-space rows survive .npz persistence like scenario rows.
    path = tmp_path / "params.npz"
    engine.save_cache(path)
    fresh = EvaluationEngine(cache_size=4096)
    fresh.load_cache(path)
    reloaded = monte_carlo_batch(dnn_comparator, scenario, [intensity_dist],
                                 n_samples=100, seed=7, engine=fresh)
    assert fresh.rows_computed == 0
    np.testing.assert_array_equal(first.ratios, reloaded.ratios)


def test_param_batches_larger_than_store_bypass_it(dnn_comparator, scenario,
                                                   intensity_dist):
    engine = EvaluationEngine(cache_size=32)
    result = monte_carlo_batch(dnn_comparator, scenario, [intensity_dist],
                               n_samples=100, seed=7, engine=engine)
    assert result.n_samples == 100
    assert engine.cache_stats.size == 0  # nothing thrashed into the store


def test_mixed_scenario_and_param_rows_evict_per_shard(
    dnn_comparator, scenario, intensity_dist
):
    """Scenario-space and parameter-space rows share the shards; filling
    both beyond capacity must evict cleanly and keep answers exact."""
    engine = EvaluationEngine(cache_size=48, cache_shards=4)
    reference = EvaluationEngine(cache_size=0)

    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=1.5, volume=1000)
        for n in range(1, 41)
    ]
    mc_kwargs = dict(n_samples=40, seed=13, engine=engine)
    for round_index in range(3):  # interleave both row kinds, overfill
        grid = engine.evaluate_batch(dnn_comparator, scenarios)
        draws = monte_carlo_batch(dnn_comparator, scenario,
                                  [intensity_dist], **mc_kwargs)
    stats = engine.cache_stats
    assert stats.size <= 48 + 48 // 8  # packed shards + object side-cache

    cold_grid = reference.evaluate_batch(dnn_comparator, scenarios)
    np.testing.assert_array_equal(grid.ratios, cold_grid.ratios)
    cold_draws = monte_carlo_batch(dnn_comparator, scenario,
                                   [intensity_dist], n_samples=40, seed=13,
                                   engine=reference)
    np.testing.assert_array_equal(draws.ratios, cold_draws.ratios)


# ----------------------------------------------------------------------
# Chunked multi-core dispatch
# ----------------------------------------------------------------------


def test_chunked_dispatch_is_bit_identical(dnn_comparator, scenario,
                                           intensity_dist, monkeypatch):
    n = 1000
    whole = monte_carlo_batch(dnn_comparator, scenario, [intensity_dist],
                              n_samples=n, seed=21,
                              engine=EvaluationEngine(cache_size=0))
    monkeypatch.setattr(engine_module, "PARAM_CHUNK_ROWS", 128)
    chunked = monte_carlo_batch(dnn_comparator, scenario, [intensity_dist],
                                n_samples=n, seed=21,
                                engine=EvaluationEngine(cache_size=0))
    np.testing.assert_array_equal(whole.ratios, chunked.ratios)
    np.testing.assert_array_equal(whole.winners, chunked.winners)
    # Forcing thread-pool dispatch must not change values either.
    threaded_engine = EvaluationEngine(cache_size=0, workers=4)
    threaded = monte_carlo_batch(dnn_comparator, scenario, [intensity_dist],
                                 n_samples=n, seed=21, engine=threaded_engine)
    threaded_engine.close()
    np.testing.assert_array_equal(whole.ratios, threaded.ratios)


def test_evaluate_param_batch_validates_sizes(dnn_comparator, scenario):
    engine = EvaluationEngine()
    params = ParameterBatch.from_comparator(dnn_comparator, 4)
    with pytest.raises(ParameterError):
        engine.evaluate_param_batch(params, ScenarioBatch.tile(scenario, 5))


# ----------------------------------------------------------------------
# DSE and tornado ride the cached parameter pipeline
# ----------------------------------------------------------------------


def test_explore_batch_warm_reexplore_recomputes_nothing(scenario):
    engine = EvaluationEngine(cache_size=4096)
    grid = {"duty_cycle": [0.1, 0.5, 0.9], "use_energy_source": ["wind", "coal"]}
    first = explore_batch("dnn", scenario, grid, engine=engine)
    computed = engine.rows_computed
    assert computed == 6
    second = explore_batch("dnn", scenario, grid, engine=engine)
    assert engine.rows_computed == computed  # pure store gather
    assert [p.ratio for p in second.points] == [p.ratio for p in first.points]
    classic = explore("dnn", scenario, grid,
                      engine=EvaluationEngine(vectorize=False))
    for got, want in zip(second.points, classic.points):
        np.testing.assert_allclose(got.ratio, want.ratio,
                                   rtol=1.0e-12, atol=0.0)


def test_tornado_warm_endpoints_recompute_nothing(dnn_comparator, scenario,
                                                  intensity_dist):
    engine = EvaluationEngine(cache_size=4096)
    first = tornado(dnn_comparator, scenario, [intensity_dist], engine=engine)
    computed = engine.rows_computed
    second = tornado(dnn_comparator, scenario, [intensity_dist], engine=engine)
    assert engine.rows_computed == computed
    assert second.baseline_ratio == first.baseline_ratio
    assert second.entries == first.entries
