"""Tests for the FPGA-vs-ASIC comparison layer."""

import pytest

from repro.core.comparison import PlatformComparator, compare_domain
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.catalog import get_domain


def test_for_domain_builds_iso_performance_pair(suite):
    comparator = PlatformComparator.for_domain("dnn", suite)
    domain = get_domain("dnn")
    assert comparator.fpga_device.area_mm2 == pytest.approx(
        domain.asic_area_mm2 * domain.area_ratio
    )
    assert comparator.asic_device.area_mm2 == domain.asic_area_mm2


def test_ratio_definition(dnn_comparator, baseline_scenario):
    result = dnn_comparator.compare(baseline_scenario)
    assert result.ratio == pytest.approx(
        result.fpga.footprint.total / result.asic.footprint.total
    )


def test_winner_consistent_with_ratio(dnn_comparator, baseline_scenario):
    result = dnn_comparator.compare(baseline_scenario)
    if result.ratio < 1.0:
        assert result.winner == "fpga"
        assert result.fpga_advantage_kg > 0.0
    else:
        assert result.winner == "asic"
        assert result.fpga_advantage_kg <= 0.0


def test_summary_keys(dnn_comparator, small_scenario):
    summary = dnn_comparator.compare(small_scenario).summary()
    assert set(summary) == {
        "fpga_total_kg", "asic_total_kg", "ratio", "winner", "fpga_advantage_kg",
    }


def test_compare_domain_convenience(baseline_scenario):
    result = compare_domain("crypto", baseline_scenario)
    assert result.winner == "fpga"  # crypto FPGA always wins


def test_domain_spec_instance_accepted(baseline_scenario, suite):
    result = compare_domain(get_domain("dnn"), baseline_scenario, suite)
    assert result.ratio > 0.0


def test_custom_suite_changes_outcome(baseline_scenario):
    from repro.operation.energy import OperatingProfile
    from repro.operation.model import OperationModel

    # A coal-powered deployment inflates FPGA operational penalty (3x power).
    dirty = ModelSuite.default().with_overrides(
        operation=OperationModel(energy_source="coal",
                                 profile=OperatingProfile(duty_cycle=0.9))
    )
    base = compare_domain("dnn", baseline_scenario).ratio
    coal = compare_domain("dnn", baseline_scenario, dirty).ratio
    assert coal > base


def test_crypto_single_app_near_parity(suite):
    """Same silicon, same power: only design/app-dev differ at 1 app."""
    scenario = Scenario(num_apps=1, app_lifetime_years=2.0, volume=1_000_000)
    result = compare_domain("crypto", scenario, suite)
    assert result.ratio == pytest.approx(1.0, abs=0.15)
