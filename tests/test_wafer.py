"""Tests for wafer geometry helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError
from repro.manufacturing.wafer import (
    dies_per_wafer,
    usable_wafer_area_cm2,
    wafer_area_per_die_cm2,
)
from repro.units import RETICLE_LIMIT_MM2


def test_usable_area_300mm():
    # pi * (150-3)^2 mm^2 = 678.9 cm^2.
    assert usable_wafer_area_cm2(300.0) == pytest.approx(678.9, rel=1e-3)


def test_usable_area_rejects_total_edge_exclusion():
    with pytest.raises(CapacityError):
        usable_wafer_area_cm2(10.0, edge_exclusion_mm=6.0)


def test_dies_per_wafer_typical():
    # ~100 mm^2 dies on 300 mm wafer: roughly 600 gross dies.
    gross = dies_per_wafer(100.0)
    assert 500 < gross < 700


def test_dies_per_wafer_monotone_in_area():
    assert dies_per_wafer(50.0) > dies_per_wafer(100.0) > dies_per_wafer(400.0)


def test_reticle_limit_enforced():
    with pytest.raises(CapacityError, match="reticle"):
        dies_per_wafer(RETICLE_LIMIT_MM2 + 1.0)


def test_die_at_reticle_limit_allowed():
    assert dies_per_wafer(RETICLE_LIMIT_MM2) >= 1


@given(st.floats(min_value=1.0, max_value=800.0))
def test_wafer_area_share_at_least_die_area(die_area_mm2):
    share_cm2 = wafer_area_per_die_cm2(die_area_mm2)
    assert share_cm2 >= die_area_mm2 / 100.0


@given(st.floats(min_value=1.0, max_value=800.0))
def test_share_times_gross_dies_covers_wafer(die_area_mm2):
    gross = dies_per_wafer(die_area_mm2)
    share = wafer_area_per_die_cm2(die_area_mm2)
    total = usable_wafer_area_cm2(300.0)
    # Shares tile the wafer (within the max() floor applied per-die).
    assert share * gross >= total * 0.999 or share == pytest.approx(die_area_mm2 / 100.0)


def test_smaller_wafer_fewer_dies():
    assert dies_per_wafer(100.0, wafer_diameter_mm=200.0) < dies_per_wafer(100.0)
