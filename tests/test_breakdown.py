"""Tests for component breakdowns."""

import pytest

from repro.analysis.breakdown import breakdown_from_sweep, breakdown_table
from repro.analysis.sweep import sweep
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario


@pytest.fixture
def num_apps_sweep(dnn_comparator):
    base = Scenario(num_apps=1, app_lifetime_years=1.0, volume=10_000)
    return sweep(dnn_comparator, base, "num_apps", [1, 2, 3])


def test_breakdown_components_complete(num_apps_sweep):
    breakdown = breakdown_from_sweep(num_apps_sweep, "fpga")
    assert set(breakdown.components) == set(CarbonFootprint.COMPONENTS)
    for series in breakdown.components.values():
        assert len(series) == 3


def test_breakdown_matches_footprints(num_apps_sweep):
    breakdown = breakdown_from_sweep(num_apps_sweep, "asic")
    direct = num_apps_sweep.comparisons[1].asic.footprint
    assert breakdown.components["manufacturing"][1] == pytest.approx(
        direct.manufacturing
    )


def test_stacked_rows_totals(num_apps_sweep):
    rows = breakdown_from_sweep(num_apps_sweep, "fpga").stacked_rows()
    direct = num_apps_sweep.comparisons[0].fpga.footprint
    assert rows[0]["total"] == pytest.approx(direct.total)
    assert rows[0]["embodied"] == pytest.approx(direct.embodied)
    assert rows[0]["num_apps"] == 1.0


def test_fpga_embodied_flat_asic_growing(num_apps_sweep):
    """The paper's Fig. 7(a) structural claim."""
    fpga = breakdown_from_sweep(num_apps_sweep, "fpga").stacked_rows()
    asic = breakdown_from_sweep(num_apps_sweep, "asic").stacked_rows()
    assert fpga[0]["embodied"] == pytest.approx(fpga[-1]["embodied"])
    assert asic[-1]["embodied"] > asic[0]["embodied"]


def test_unknown_platform(num_apps_sweep):
    with pytest.raises(KeyError):
        breakdown_from_sweep(num_apps_sweep, "gpu")


def test_breakdown_table_rows():
    fp = CarbonFootprint(design=1.0, manufacturing=2.0, operational=7.0)
    rows = breakdown_table(fp)
    assert len(rows) == len(CarbonFootprint.COMPONENTS)
    names = [r[0] for r in rows]
    assert names == list(CarbonFootprint.COMPONENTS)
    design_row = rows[0]
    assert design_row[1] == 1.0
    assert design_row[2] == pytest.approx(0.1)
