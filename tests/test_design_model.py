"""Tests for the Eq. (4) design CFP model."""

import pytest

from repro.data.reports import get_report
from repro.design.model import DesignModel, DesignTeam
from repro.errors import ParameterError


@pytest.fixture
def model():
    return DesignModel()


def test_average_chip_has_unity_gate_scale(model):
    report = get_report("design_house_b")
    result = model.assess_project(report.avg_gates_per_chip_mgates)
    assert result.gate_scale == pytest.approx(1.0)


def test_reduced_equation_form():
    """C_des = E_des * CI * T_proj * scale * overhead for the average chip."""
    model = DesignModel(energy_source=400.0, overhead_factor=1.0)
    report = get_report("design_house_b")
    result = model.assess_project(report.avg_gates_per_chip_mgates)
    expected = 7.3e6 * 0.4 * report.typical_project_years
    assert result.total_kg == pytest.approx(expected)


def test_sublinear_gate_scaling(model):
    report = get_report("design_house_b")
    avg = report.avg_gates_per_chip_mgates
    double = model.project_kg(2 * avg) / model.project_kg(avg)
    assert 1.0 < double < 2.0


def test_beta_one_recovers_proportional_form():
    model = DesignModel(gate_scaling_beta=1.0)
    report = get_report("design_house_b")
    avg = report.avg_gates_per_chip_mgates
    assert model.project_kg(2 * avg) == pytest.approx(2 * model.project_kg(avg))


def test_beta_zero_removes_size_dependence():
    model = DesignModel(gate_scaling_beta=0.0)
    assert model.project_kg(100.0) == pytest.approx(model.project_kg(10_000.0))


def test_team_overrides_duration(model):
    short = model.project_kg(1000.0, DesignTeam(project_years=1.0))
    long = model.project_kg(1000.0, DesignTeam(project_years=3.0))
    assert long == pytest.approx(3 * short)


def test_cleaner_energy_source_lowers_cfp():
    dirty = DesignModel(energy_source="coal")
    clean = DesignModel(energy_source="wind")
    assert clean.project_kg(1000.0) < dirty.project_kg(1000.0)


def test_numeric_energy_source_in_table1_units():
    # 700 g/kWh (Table 1 upper bound) -> 0.7 kg/kWh.
    model = DesignModel(energy_source=700.0)
    assert model.carbon_intensity() == pytest.approx(0.7)


def test_default_blend_uses_renewable_fraction():
    model = DesignModel(report="design_house_a")  # 10% renewable
    blended = model.carbon_intensity()
    assert 0.05 < blended <= 0.38


def test_allocation_scales_linearly():
    half = DesignModel(allocation=0.5)
    full = DesignModel(allocation=1.0)
    assert full.project_kg(1000.0) == pytest.approx(2 * half.project_kg(1000.0))


def test_rejects_non_positive_gates(model):
    with pytest.raises(ParameterError):
        model.assess_project(0.0)


def test_rejects_bad_team():
    with pytest.raises(ParameterError):
        DesignTeam(engineers=0.0)
    with pytest.raises(ParameterError):
        DesignTeam(project_years=-1.0)


def test_per_employee_reporting_positive(model):
    assert model.cfp_per_employee_year_kg() > 0.0


def test_design_cfp_magnitude_kt_scale(model):
    """Calibration: a flagship project lands in the ktCO2e range."""
    total = model.project_kg(3000.0)
    assert 1.0e6 < total < 2.0e7
