"""Tests for the static invariant checker and registry parity auditor.

Each lint checker gets true-positive fixtures (a seeded violation must
be found) and true-negative fixtures (the repo's accepted idioms must
not be); the parity layer is exercised both on the shipped tree (all 57
columns must agree) and against a deliberately skewed kernel (the skew
must be caught).
"""

import json
import textwrap

import numpy as np
import pytest

from repro.audit.baseline import Baseline, BaselineEntry, write_baseline
from repro.audit.checks import all_checkers
from repro.audit.checks.checkpoint import CheckpointContractChecker
from repro.audit.checks.coverage import CoverageChecker
from repro.audit.checks.exceptions import ExceptionHygieneChecker
from repro.audit.checks.floatsum import FloatAccumulationChecker
from repro.audit.checks.fused import FusedTwinChecker
from repro.audit.checks.rng import RngDisciplineChecker
from repro.audit.checks.sharedmem import SharedMemoryChecker
from repro.audit.checks.spawn import SpawnSafetyChecker
from repro.audit.linter import ModuleInfo, lint_modules, run_lint
from repro.audit.parity import KERNEL_RTOL, ColumnProbe, run_parity
from repro.cli import main
from repro.core.scenario import Scenario
from repro.engine.vector import params as P
from repro.engine.vector.params import COLUMN_NAMES, COLUMN_SPECS, ColumnSpec
from repro.errors import ParameterError


def _module(source, relpath="pkg/mod.py", **kwargs):
    return ModuleInfo.from_source(relpath, textwrap.dedent(source), **kwargs)


def _findings(checker, source, **kwargs):
    return list(checker.check_module(_module(source, **kwargs)))


# ----------------------------------------------------------------------
# GF-RNG
# ----------------------------------------------------------------------


def test_rng_flags_legacy_and_unseeded():
    findings = _findings(
        RngDisciplineChecker(),
        """
        import numpy as np

        def f():
            np.random.seed(0)
            return np.random.default_rng()
        """,
    )
    assert len(findings) == 2
    assert all(f.check == "GF-RNG" for f in findings)


def test_rng_accepts_seeded_and_seedsequence():
    assert not _findings(
        RngDisciplineChecker(),
        """
        import numpy as np

        def f(seed):
            entropy = int(np.random.SeedSequence().entropy)
            return np.random.default_rng(seed), entropy
        """,
    )


def test_rng_skips_test_modules():
    assert not _findings(
        RngDisciplineChecker(),
        """
        import numpy as np

        def test_f():
            return np.random.default_rng()
        """,
        relpath="tests/test_mod.py",
    )


# ----------------------------------------------------------------------
# GF-SPAWN
# ----------------------------------------------------------------------


def test_spawn_flags_lambda_and_nested_function():
    findings = _findings(
        SpawnSafetyChecker(),
        """
        from concurrent.futures import ProcessPoolExecutor

        def f(items):
            def work(x):
                return x
            with ProcessPoolExecutor() as pool:
                a = pool.submit(lambda x: x, items[0])
                b = pool.map(work, items)
            return a, b
        """,
    )
    assert len(findings) == 2
    assert all(f.check == "GF-SPAWN" for f in findings)


def test_spawn_flags_run_stream_lambda():
    findings = _findings(
        SpawnSafetyChecker(),
        """
        def f(source, reduction):
            return run_stream(source, reduction, on_chunk=lambda i: i)
        """,
    )
    assert len(findings) == 1


def test_spawn_skips_thread_pools():
    assert not _findings(
        SpawnSafetyChecker(),
        """
        from concurrent.futures import ThreadPoolExecutor

        def f(items):
            def piece(x):
                return x
            with ThreadPoolExecutor() as pool:
                return list(pool.map(piece, items))
        """,
    )


# ----------------------------------------------------------------------
# GF-SHM
# ----------------------------------------------------------------------


def test_sharedmem_flags_uncovered_create():
    findings = _findings(
        SharedMemoryChecker(),
        """
        from multiprocessing.shared_memory import SharedMemory

        def f(n):
            shm = SharedMemory(create=True, size=n)
            return shm.name
        """,
    )
    assert len(findings) == 1
    assert findings[0].check == "GF-SHM"


def test_sharedmem_accepts_try_finally_cleanup():
    assert not _findings(
        SharedMemoryChecker(),
        """
        from multiprocessing.shared_memory import SharedMemory

        def f(n):
            shm = SharedMemory(create=True, size=n)
            try:
                return bytes(shm.buf)
            finally:
                shm.close()
                shm.unlink()
        """,
    )


def test_sharedmem_ignores_attach():
    assert not _findings(
        SharedMemoryChecker(),
        """
        from multiprocessing.shared_memory import SharedMemory

        def f(name):
            return SharedMemory(name=name)
        """,
    )


# ----------------------------------------------------------------------
# GF-FLT
# ----------------------------------------------------------------------

_REDUCTION_MODULE = """
def neumaier_add(total, comp, value):
    return total, comp

def naive_total(xs):
    total = 0.0
    for x in xs:
        total += x
    return total

def builtin_total(xs):
    return sum(xs)
"""


def test_floatsum_flags_naive_accumulation_near_helpers():
    findings = _findings(FloatAccumulationChecker(), _REDUCTION_MODULE)
    assert len(findings) == 2
    assert all(f.check == "GF-FLT" for f in findings)


def test_floatsum_ignores_modules_without_helpers():
    assert not _findings(
        FloatAccumulationChecker(),
        """
        def naive_total(xs):
            total = 0.0
            for x in xs:
                total += x
            return total
        """,
    )


def test_floatsum_exempts_the_compensated_implementation():
    assert not _findings(
        FloatAccumulationChecker(),
        """
        def neumaier_total(xs):
            total = 0.0
            for x in xs:
                total += x
            return total
        """,
    )


# ----------------------------------------------------------------------
# GF-EXC
# ----------------------------------------------------------------------


def test_exceptions_flags_unjustified_broad_except():
    findings = _findings(
        ExceptionHygieneChecker(),
        """
        def f():
            try:
                g()
            except Exception:
                pass
        """,
    )
    assert len(findings) == 1
    assert findings[0].check == "GF-EXC"


def test_exceptions_flags_bare_tag_without_reason():
    findings = _findings(
        ExceptionHygieneChecker(),
        """
        def f():
            try:
                g()
            except Exception:  # noqa: BLE001
                pass
        """,
    )
    assert len(findings) == 1
    assert "no justification" in findings[0].message


def test_exceptions_accepts_justified_tag_reraise_and_narrow():
    assert not _findings(
        ExceptionHygieneChecker(),
        """
        def f():
            try:
                g()
            except Exception as exc:  # noqa: BLE001 - surfaced via the result future
                record(exc)
            try:
                g()
            except Exception:
                cleanup()
                raise
            try:
                g()
            except ValueError:
                pass
        """,
    )


# ----------------------------------------------------------------------
# GF-COV
# ----------------------------------------------------------------------


def _coverage_findings():
    specs = (
        ColumnSpec(0, "COL_BOTH", "g", ("models",), ("knob_both",)),
        ColumnSpec(1, "COL_KERNEL_ONLY", "g", ("models",), ("knob_kernel",)),
        ColumnSpec(2, "COL_SCALAR_ONLY", "g", ("models",), ("knob_scalar",)),
    )
    modules = [
        _module(
            """
            from repro.engine.vector import params as P

            def build(params):
                return params.col(P.COL_BOTH) + params.col(P.COL_KERNEL_ONLY)
            """,
            relpath="engine/vector/evaluator.py",
        ),
        _module(
            """
            def assess(model):
                return model.knob_both + model.knob_scalar
            """,
            relpath="models/act.py",
        ),
    ]
    checker = CoverageChecker(specs=specs)
    return {f.symbol: f for f in checker.check_project(modules)}


def test_coverage_flags_one_sided_columns():
    by_symbol = _coverage_findings()
    assert "COL_BOTH" not in by_symbol
    assert "no scalar model reads" in by_symbol["COL_KERNEL_ONLY"].message
    assert "kernel path ignores" in by_symbol["COL_SCALAR_ONLY"].message


def test_registry_specs_cover_every_column():
    assert len(COLUMN_SPECS) == P.N_PARAM_COLS
    for spec in COLUMN_SPECS:
        assert COLUMN_NAMES[spec.index] == spec.name
        assert spec.scalar_packages and spec.scalar_attrs


# ----------------------------------------------------------------------
# GF-CKPT
# ----------------------------------------------------------------------


def test_checkpoint_flags_reducer_without_state_contract():
    findings = _findings(
        CheckpointContractChecker(),
        """
        class Sketchy:
            def update(self, result):
                pass

            def merge(self, other):
                pass

            def fresh(self):
                return Sketchy()
        """,
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.check == "GF-CKPT"
    assert finding.symbol == "Sketchy"
    assert "from_state" in finding.message and "to_state" in finding.message


def test_checkpoint_reports_only_the_missing_half():
    findings = _findings(
        CheckpointContractChecker(),
        """
        class HalfWay:
            def update(self, result):
                pass

            def merge(self, other):
                pass

            def fresh(self):
                return HalfWay()

            def to_state(self):
                return {}
        """,
    )
    assert len(findings) == 1
    assert "from_state" in findings[0].message
    assert "to_state —" not in findings[0].message


def test_checkpoint_accepts_full_contract_and_non_reducers():
    # The full contract is clean.
    assert not _findings(
        CheckpointContractChecker(),
        """
        class Durable:
            def update(self, result):
                pass

            def merge(self, other):
                pass

            def fresh(self):
                return Durable()

            def to_state(self):
                return {}

            @classmethod
            def from_state(cls, state):
                return cls()
        """,
    )
    # A class missing part of the update/merge/fresh trio is not a
    # streaming reducer and is out of scope.
    assert not _findings(
        CheckpointContractChecker(),
        """
        class Accumulator:
            def update(self, result):
                pass

            def merge(self, other):
                pass
        """,
    )


def test_checkpoint_skips_test_modules():
    assert not _findings(
        CheckpointContractChecker(),
        """
        class FakeReducer:
            def update(self, result):
                pass

            def merge(self, other):
                pass

            def fresh(self):
                return FakeReducer()
        """,
        relpath="tests/test_mod.py",
    )


def test_checkpoint_registry_reducers_all_satisfy_contract():
    # The audit rule and the runtime registry must agree: every reducer
    # the checkpoint layer can be asked to persist implements both
    # halves of the state contract (plus the bundle that wraps them).
    from repro.engine.vector.reducers import REDUCER_REGISTRY, StreamingReduction

    for cls in (*REDUCER_REGISTRY, StreamingReduction):
        assert callable(getattr(cls, "to_state")), cls.__name__
        assert callable(getattr(cls, "from_state")), cls.__name__


# ----------------------------------------------------------------------
# GF-FUSE
# ----------------------------------------------------------------------


def _fused_findings(modules):
    return {f.symbol: f for f in FusedTwinChecker().check_project(modules)}


def test_fused_flags_kernel_without_twin():
    by_symbol = _fused_findings(
        [
            _module(
                """
                def fused_orphan_kernel(a, b, *, ctx):
                    return a + b
                """,
                relpath="engine/vector/fused.py",
            )
        ]
    )
    finding = by_symbol["fused_orphan_kernel"]
    assert finding.check == "GF-FUSE"
    assert "no module-level NumPy twin" in finding.message


def test_fused_flags_positional_signature_drift():
    by_symbol = _fused_findings(
        [
            _module(
                """
                def fused_ratio(fpga_totals, asic_totals, *, pool):
                    return fpga_totals / asic_totals
                """,
                relpath="engine/vector/fused.py",
            ),
            _module(
                """
                def ratio(asic_totals, fpga_totals):
                    return fpga_totals / asic_totals
                """,
                relpath="engine/vector/kernels.py",
            ),
        ]
    )
    finding = by_symbol["fused_ratio"]
    assert "drifted" in finding.message
    assert "engine/vector/kernels.py" in finding.message


def test_fused_accepts_matching_twins_with_kwonly_plumbing():
    # Keyword-only plumbing (ctx/pool) differs by design; positional
    # agreement is what the parity sweep relies on.
    assert not _fused_findings(
        [
            _module(
                """
                def fused_ratio(fpga_totals, asic_totals, *, ctx, pool=None):
                    return fpga_totals / asic_totals
                """,
                relpath="engine/vector/fused.py",
            ),
            _module(
                """
                def ratio(fpga_totals, asic_totals):
                    return fpga_totals / asic_totals
                """,
                relpath="engine/vector/kernels.py",
            ),
        ]
    )


def test_fused_skips_test_modules():
    assert not _fused_findings(
        [
            _module(
                """
                def fused_fake_kernel(a, b):
                    return a + b
                """,
                relpath="tests/test_mod.py",
            )
        ]
    )


def test_fused_shipped_tree_is_clean():
    # Every shipped fused_* kernel has a signature-matched chain twin —
    # and the check is not vacuous: the fused tier ships real kernels.
    import ast as ast_mod

    from repro.audit.linter import collect_modules

    modules = collect_modules()
    assert not list(FusedTwinChecker().check_project(modules))
    fused = next(m for m in modules if m.relpath == "engine/vector/fused.py")
    n_kernels = sum(
        isinstance(node, ast_mod.FunctionDef) and node.name.startswith("fused_")
        for node in fused.tree.body
    )
    assert n_kernels >= 10


# ----------------------------------------------------------------------
# Baseline reconciliation
# ----------------------------------------------------------------------

_VIOLATION = """
import numpy as np

def f():
    return np.random.default_rng()
"""


def test_baseline_suppresses_known_finding():
    modules = [_module(_VIOLATION)]
    raw = lint_modules(modules, checks=[RngDisciplineChecker()])
    assert len(raw.findings) == 1 and not raw.ok
    baseline = Baseline(
        (BaselineEntry(raw.findings[0].fingerprint, "fixture: deliberate"),)
    )
    report = lint_modules(modules, checks=[RngDisciplineChecker()], baseline=baseline)
    assert report.ok
    assert len(report.suppressed) == 1
    assert report.suppressed[0].justification == "fixture: deliberate"
    assert not report.stale


def test_baseline_reports_stale_entries_without_failing():
    baseline = Baseline((BaselineEntry("GF-RNG::gone.py::f::fixed long ago", "x"),))
    report = lint_modules([], checks=[RngDisciplineChecker()], baseline=baseline)
    assert report.ok
    assert report.stale == ("GF-RNG::gone.py::f::fixed long ago",)


def test_baseline_rejects_missing_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"suppressions": [{"fingerprint": "a::b::c::d"}]}))
    with pytest.raises(ParameterError):
        Baseline.load(path)


def test_write_baseline_preserves_justifications(tmp_path):
    modules = [_module(_VIOLATION)]
    raw = lint_modules(modules, checks=[RngDisciplineChecker()])
    path = tmp_path / "baseline.json"
    write_baseline(list(raw.findings), path)
    # Fresh entries carry the TODO placeholder...
    entries = json.loads(path.read_text())["suppressions"]
    assert entries[0]["justification"].startswith("TODO")
    # ...and a hand-edited justification survives a rewrite.
    entries[0]["justification"] = "reviewed: fixture"
    path.write_text(json.dumps({"suppressions": entries}))
    write_baseline(list(raw.findings), path)
    assert Baseline.load(path).entries[0].justification == "reviewed: fixture"


# ----------------------------------------------------------------------
# The shipped tree
# ----------------------------------------------------------------------


def test_shipped_tree_is_lint_clean():
    report = run_lint()
    assert report.ok, report.render()
    assert not report.stale, report.render()
    # Every suppression is deliberate: justified, and still matching.
    assert all(f.justification for f in report.suppressed)


def test_all_checkers_have_distinct_ids():
    checkers = all_checkers()
    ids = [c.id for c in checkers]
    assert len(set(ids)) == len(ids) == 8


# ----------------------------------------------------------------------
# Parity auditor
# ----------------------------------------------------------------------


def test_parity_all_columns_agree():
    report = run_parity(values_per_column=2)
    assert len(report.columns) == P.N_PARAM_COLS
    assert report.ok, report.render()
    for column in report.columns:
        assert column.moved and column.outputs_changed, column.render()
        assert column.kernel_max_rel_err <= KERNEL_RTOL, column.render()
        assert column.fused_max_rel_err <= KERNEL_RTOL, column.render()
        assert column.stream_bitident, column.render()


def test_parity_reports_fused_tier_and_chain_override():
    fused = run_parity(values_per_column=1, columns=[P.OP_CI])
    assert fused.kernel_tier in ("fused-numpy", "fused-numba")
    chain = run_parity(
        values_per_column=1, columns=[P.OP_CI], kernel_tier="numpy"
    )
    assert chain.kernel_tier == "numpy-chain"
    assert chain.ok, chain.render()


def test_parity_catches_skewed_fused_kernel(monkeypatch):
    import repro.engine.vector.fused as fused_mod

    real = fused_mod.fused_operation_per_chip_year_kg

    def skewed(*args, **kwargs):
        return fused_mod._mul(kwargs["ctx"], real(*args, **kwargs), 1.01)

    monkeypatch.setattr(
        fused_mod, "fused_operation_per_chip_year_kg", skewed
    )
    report = run_parity(values_per_column=1, columns=[P.OP_CI])
    assert not report.ok
    assert report.columns[0].fused_max_rel_err > KERNEL_RTOL
    # The chain path is untouched — only the fused sweep trips.
    assert report.columns[0].kernel_max_rel_err <= KERNEL_RTOL


def test_parity_catches_skewed_kernel(monkeypatch):
    # The evaluator imports kernels by name, so the skew must be
    # injected into the evaluator module's globals.
    import repro.engine.vector.evaluator as vec_evaluator

    real = vec_evaluator.operation_per_chip_year_kg
    monkeypatch.setattr(
        vec_evaluator,
        "operation_per_chip_year_kg",
        lambda *args, **kwargs: real(*args, **kwargs) * 1.01,
    )
    report = run_parity(values_per_column=1, columns=[P.OP_CI])
    assert not report.ok
    assert report.columns[0].kernel_max_rel_err > KERNEL_RTOL


def test_parity_inert_probe_is_a_coverage_failure():
    probes = (ColumnProbe(P.OP_CI, (1.0,), lambda c, v: c),)
    report = run_parity(values_per_column=1, probes=probes)
    assert not report.ok
    assert not report.columns[0].moved
    assert not report.columns[0].outputs_changed


def test_parity_captures_probe_exceptions():
    def boom(c, v):
        raise RuntimeError("broken probe")

    probes = (ColumnProbe(P.OP_CI, (1.0,), boom),)
    report = run_parity(values_per_column=1, probes=probes)
    assert not report.ok
    assert "broken probe" in report.columns[0].error


def test_parity_rejects_bad_depth():
    with pytest.raises(ParameterError):
        run_parity(values_per_column=0)


# ----------------------------------------------------------------------
# Monte-Carlo seed discipline (the opt-in satellite)
# ----------------------------------------------------------------------


def test_monte_carlo_rejects_unseeded_without_opt_in(dnn_comparator):
    from repro.analysis.montecarlo import ParameterDistribution, monte_carlo

    dist = ParameterDistribution("x", 1.0, 2.0, lambda c, v: c)
    scn = Scenario(num_apps=2, app_lifetime_years=1.0, volume=1000)
    with pytest.raises(ParameterError, match="allow_unseeded"):
        monte_carlo(dnn_comparator, scn, [dist], n_samples=3, seed=None)
    result = monte_carlo(
        dnn_comparator, scn, [dist], n_samples=3, seed=None, allow_unseeded=True
    )
    assert result.ratios.shape == (3,)
    assert np.all(np.isfinite(result.ratios))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_audit_lint_only_passes_on_shipped_tree(capsys):
    assert main(["audit", "--lint-only"]) == 0
    out = capsys.readouterr().out
    assert "lint:" in out and "audit: OK" in out


def test_cli_audit_parity_only(capsys):
    assert main(["audit", "--parity-only", "--parity-values", "1"]) == 0
    out = capsys.readouterr().out
    assert "parity: 57 columns probed, 0 failed" in out


def test_cli_audit_json_report(tmp_path, capsys):
    out_path = tmp_path / "audit.json"
    assert main(["audit", "--lint-only", "--json", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["audit_version"] == 1
    assert payload["ok"] is True
    assert payload["lint"]["ok"] is True
    assert payload["parity"] is None
    capsys.readouterr()


def test_cli_audit_fails_on_seeded_violation(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import numpy as np\n\n\ndef f():\n    return np.random.default_rng()\n"
    )
    assert main(
        ["audit", "--lint-only", "--root", str(tmp_path), "--checks", "GF-RNG"]
    ) == 1
    assert "GF-RNG" in capsys.readouterr().out


def test_cli_audit_clean_custom_root(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import numpy as np\n\n\ndef f(seed):\n    return np.random.default_rng(seed)\n"
    )
    assert main(
        ["audit", "--lint-only", "--root", str(tmp_path), "--checks", "GF-RNG"]
    ) == 0
    capsys.readouterr()


def test_cli_audit_rejects_unknown_checker(tmp_path, capsys):
    assert main(["audit", "--lint-only", "--checks", "GF-NOPE"]) == 2
    assert "unknown checker" in capsys.readouterr().err


def test_cli_audit_update_baseline(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import numpy as np\n\n\ndef f():\n    return np.random.default_rng()\n"
    )
    baseline_path = tmp_path / "baseline.json"
    assert main(
        [
            "audit", "--lint-only", "--root", str(tmp_path),
            "--checks", "GF-RNG", "--baseline", str(baseline_path),
            "--update-baseline",
        ]
    ) == 0
    entries = json.loads(baseline_path.read_text())["suppressions"]
    assert len(entries) == 1 and entries[0]["fingerprint"].startswith("GF-RNG::")
    capsys.readouterr()
