"""Shared fixtures for the GreenFPGA test suite."""

from __future__ import annotations

import pytest

from repro.core.comparison import PlatformComparator
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.data.nodes import get_node
from repro.devices.asic import AsicDevice
from repro.devices.fpga import FpgaDevice


@pytest.fixture(scope="session")
def suite() -> ModelSuite:
    """Default calibrated model suite (expensive to rebuild per test)."""
    return ModelSuite.default()


@pytest.fixture
def baseline_scenario() -> Scenario:
    """The paper's common baseline: N_app=5, T_i=2 y, N_vol=1e6."""
    return Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)


@pytest.fixture
def small_scenario() -> Scenario:
    """A light scenario for fast assessments."""
    return Scenario(num_apps=2, app_lifetime_years=1.0, volume=10_000)


@pytest.fixture
def node10():
    """The 10 nm technology node (the paper's testcase node)."""
    return get_node("10nm")


@pytest.fixture
def dnn_comparator(suite: ModelSuite) -> PlatformComparator:
    """Iso-performance comparator for the DNN domain."""
    return PlatformComparator.for_domain("dnn", suite)


@pytest.fixture
def simple_fpga() -> FpgaDevice:
    """A small FPGA used by unit tests."""
    return FpgaDevice(name="test-fpga", area_mm2=200.0, node_name="10nm", peak_power_w=10.0)


@pytest.fixture
def simple_asic() -> AsicDevice:
    """A small ASIC used by unit tests."""
    return AsicDevice(name="test-asic", area_mm2=100.0, node_name="10nm", peak_power_w=5.0)
