"""Tests for the grid carbon-intensity dataset."""

import pytest

from repro.data.grid import (
    GridRegion,
    carbon_intensity_kg_per_kwh,
    get_region,
    list_regions,
)
from repro.errors import ParameterError, UnknownEntityError


def test_known_sources_present():
    names = list_regions()
    for expected in ("coal", "wind", "taiwan", "usa", "world", "green_datacenter"):
        assert expected in names


def test_coal_dirtier_than_wind():
    assert get_region("coal").intensity_g_per_kwh > get_region("wind").intensity_g_per_kwh


def test_intensity_kg_property():
    region = get_region("world")
    assert region.intensity_kg_per_kwh == pytest.approx(0.475)


def test_resolver_accepts_name():
    assert carbon_intensity_kg_per_kwh("taiwan") == pytest.approx(0.509)


def test_resolver_accepts_region_instance():
    region = get_region("usa")
    assert carbon_intensity_kg_per_kwh(region) == region.intensity_kg_per_kwh


def test_resolver_accepts_numeric_g_per_kwh():
    # Numbers are interpreted as g CO2e/kWh, Table 1's unit.
    assert carbon_intensity_kg_per_kwh(700.0) == pytest.approx(0.7)
    assert carbon_intensity_kg_per_kwh(30) == pytest.approx(0.03)


def test_resolver_rejects_negative_numeric():
    with pytest.raises(ParameterError):
        carbon_intensity_kg_per_kwh(-1.0)


def test_resolver_unknown_name():
    with pytest.raises(UnknownEntityError):
        carbon_intensity_kg_per_kwh("atlantis")


def test_region_validation():
    with pytest.raises(ParameterError):
        GridRegion("bad", -5.0, 0.0, "negative intensity")


def test_paper_table1_design_intensity_range_covered():
    # Table 1: C_src,des spans 30-700 g/kWh; our sources bracket it.
    intensities = [get_region(n).intensity_g_per_kwh for n in list_regions()]
    assert min(intensities) < 30.0
    assert max(intensities) > 700.0
