"""Tests for the shared batch evaluation engine.

Covers the engine parity guarantee — engine-backed analyses must be
bit-identical to the seed per-point loops — plus the LRU cache, suite
memoisation, parallel execution, and the ratio edge-case semantics the
engine path relies on.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.analysis.dse import explore
from repro.analysis.heatmap import pairwise_heatmap
from repro.analysis.montecarlo import (
    MonteCarloResult,
    ParameterDistribution,
    monte_carlo,
)
from repro.analysis.sensitivity import tornado
from repro.analysis.sweep import sweep
from repro.config import Parameters
from repro.core.comparison import ComparisonResult
from repro.core.fpga_model import FpgaAssessment
from repro.core.asic_model import AsicAssessment
from repro.core.lifecycle import CarbonFootprint
from repro.core.scenario import Scenario
from repro.engine import (
    EvaluationEngine,
    LruCache,
    build_suite_cached,
    default_engine,
    evaluation_key,
    scenario_key,
)
from repro.errors import ParameterError
from repro.operation.model import OperationModel


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------


def test_lru_cache_hit_miss_counters():
    cache = LruCache(maxsize=4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    stats = cache.stats()
    assert stats.hits == 1 and stats.misses == 1
    assert stats.hit_rate == pytest.approx(0.5)


def test_lru_cache_evicts_least_recently_used():
    cache = LruCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3


def test_lru_cache_zero_maxsize_disables_storage():
    cache = LruCache(maxsize=0)
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is None


def test_lru_cache_rejects_negative_maxsize():
    with pytest.raises(ParameterError):
        LruCache(maxsize=-1)


# ----------------------------------------------------------------------
# Keys and suite memoisation
# ----------------------------------------------------------------------


def test_scenario_key_handles_list_lifetimes():
    a = Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=10)
    b = Scenario(num_apps=2, app_lifetime_years=(1.0, 2.0), volume=10)
    assert scenario_key(a) == scenario_key(b)
    assert hash(scenario_key(a)) == hash(scenario_key(b))


def test_scenario_key_scalar_and_expanded_agree():
    scalar = Scenario(num_apps=3, app_lifetime_years=2.0, volume=10)
    expanded = Scenario(num_apps=3, app_lifetime_years=[2.0, 2.0, 2.0], volume=10)
    assert scenario_key(scalar) == scenario_key(expanded)


def test_evaluation_key_distinguishes_suites(dnn_comparator, small_scenario):
    perturbed = dataclasses.replace(
        dnn_comparator,
        suite=dnn_comparator.suite.with_overrides(
            operation=OperationModel(energy_source="coal")
        ),
    )
    assert evaluation_key(dnn_comparator, small_scenario) != evaluation_key(
        perturbed, small_scenario
    )


def test_build_suite_cached_returns_same_object():
    params = Parameters(duty_cycle=0.5)
    equal_params = Parameters(duty_cycle=0.5)
    assert build_suite_cached(params) is build_suite_cached(equal_params)
    assert build_suite_cached(params) == params.build_suite()


def test_engine_suite_for_uses_shared_memo():
    engine = EvaluationEngine()
    params = Parameters(duty_cycle=0.25)
    assert engine.suite_for(params) is build_suite_cached(params)


# ----------------------------------------------------------------------
# Engine evaluation semantics
# ----------------------------------------------------------------------


def test_evaluate_matches_direct_compare(dnn_comparator, small_scenario):
    engine = EvaluationEngine()
    direct = dnn_comparator.compare(small_scenario)
    via_engine = engine.evaluate(dnn_comparator, small_scenario)
    assert via_engine.summary() == direct.summary()


def test_evaluate_many_preserves_order_and_dedupes(dnn_comparator):
    engine = EvaluationEngine()
    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=1.0, volume=1_000)
        for n in (1, 2, 1, 3, 2)
    ]
    results = engine.evaluate_many(dnn_comparator, scenarios)
    assert len(results) == 5
    assert results[0] is results[2]  # duplicates share one assessment
    assert results[1] is results[4]
    stats = engine.cache_stats
    assert stats.misses == 3  # only the unique pairs were computed
    for scenario, result in zip(scenarios, results):
        assert result.scenario.num_apps == scenario.num_apps


def test_repeat_batches_are_cache_hits(dnn_comparator, small_scenario):
    engine = EvaluationEngine()
    engine.evaluate(dnn_comparator, small_scenario)
    engine.evaluate(dnn_comparator, small_scenario)
    stats = engine.cache_stats
    assert stats.hits >= 1 and stats.misses == 1


def test_cache_disabled_still_correct(dnn_comparator, small_scenario):
    engine = EvaluationEngine(cache_size=0)
    a = engine.evaluate(dnn_comparator, small_scenario)
    b = engine.evaluate(dnn_comparator, small_scenario)
    assert a.summary() == b.summary()


def test_clear_cache_resets(dnn_comparator, small_scenario):
    engine = EvaluationEngine()
    engine.evaluate(dnn_comparator, small_scenario)
    engine.clear_cache()
    stats = engine.cache_stats
    assert stats.size == 0 and stats.hits == 0 and stats.misses == 0


def test_engine_argument_validation():
    with pytest.raises(ParameterError):
        EvaluationEngine(workers=0)
    with pytest.raises(ParameterError):
        EvaluationEngine(chunk_size=0)


def test_default_engine_is_shared_singleton():
    assert default_engine() is default_engine()


def test_parallel_workers_match_serial(dnn_comparator):
    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=1.0, volume=10_000)
        for n in range(1, 9)
    ]
    serial = EvaluationEngine().evaluate_many(dnn_comparator, scenarios)
    parallel = EvaluationEngine(workers=2, chunk_size=2).evaluate_many(
        dnn_comparator, scenarios
    )
    for s, p in zip(serial, parallel):
        assert s.summary() == p.summary()


# ----------------------------------------------------------------------
# Parity guarantee: engine-backed analyses == seed per-point loops
# ----------------------------------------------------------------------


def test_sweep_parity_with_per_point_loop(dnn_comparator, small_scenario):
    values = [1, 2, 3, 4, 5]
    result = sweep(dnn_comparator, small_scenario, "num_apps", values,
                   engine=EvaluationEngine())
    manual = tuple(
        dnn_comparator.compare(small_scenario.with_num_apps(v)) for v in values
    )
    assert result.fpga_totals == tuple(c.fpga.footprint.total for c in manual)
    assert result.asic_totals == tuple(c.asic.footprint.total for c in manual)
    assert result.ratios == tuple(c.ratio for c in manual)


def test_heatmap_parity_with_nested_loop(dnn_comparator, small_scenario):
    x_values, y_values = [1, 2, 3], [0.5, 1.0, 2.0]
    result = pairwise_heatmap(
        dnn_comparator, small_scenario, "num_apps", x_values, "lifetime", y_values,
        engine=EvaluationEngine(),
    )
    manual = np.empty((len(y_values), len(x_values)))
    for i, y in enumerate(y_values):
        row = small_scenario.with_lifetime(y)
        for j, x in enumerate(x_values):
            manual[i, j] = dnn_comparator.ratio(row.with_num_apps(x))
    np.testing.assert_array_equal(result.ratios, manual)


def test_dse_parity_with_per_combo_loop(small_scenario):
    grid = {
        "use_energy_source": ["wind", "coal"],
        "duty_cycle": [0.1, 0.5],
    }
    result = explore("dnn", small_scenario, grid, engine=EvaluationEngine())
    import itertools

    from repro.core.comparison import PlatformComparator
    from repro.devices.catalog import get_domain

    spec = get_domain("dnn")
    names = list(grid)
    expected = []
    for combo in itertools.product(*(grid[n] for n in names)):
        params = Parameters().with_overrides(**dict(zip(names, combo)))
        comparator = PlatformComparator(
            fpga_device=spec.fpga_device(),
            asic_device=spec.asic_device(),
            suite=params.build_suite(),
        )
        expected.append(comparator.compare(small_scenario))
    assert len(result.points) == len(expected)
    for point, comparison in zip(result.points, expected):
        assert point.fpga_total_kg == comparison.fpga.footprint.total
        assert point.asic_total_kg == comparison.asic.footprint.total
        assert point.ratio == comparison.ratio


def _set_use_intensity(comparator, value):
    suite = comparator.suite.with_overrides(
        operation=OperationModel(
            energy_source=value, profile=comparator.suite.operation.profile
        )
    )
    return dataclasses.replace(comparator, suite=suite)


@pytest.fixture
def intensity_dist():
    return ParameterDistribution(
        name="use_intensity", low=30.0, high=700.0, apply=_set_use_intensity
    )


def test_monte_carlo_parity_with_seed_loop(dnn_comparator, small_scenario,
                                           intensity_dist):
    """Engine batching must not disturb the seeded RNG draw sequence."""
    result = monte_carlo(dnn_comparator, small_scenario, [intensity_dist],
                         n_samples=25, seed=11, engine=EvaluationEngine())
    rng = np.random.default_rng(11)
    expected = np.empty(25)
    for i in range(25):
        value = intensity_dist.sample(rng)
        assert result.samples[i]["use_intensity"] == value
        expected[i] = _set_use_intensity(dnn_comparator, value).ratio(small_scenario)
    np.testing.assert_array_equal(result.ratios, expected)


def test_monte_carlo_reproducible_through_shared_cache(dnn_comparator,
                                                       small_scenario,
                                                       intensity_dist):
    engine = EvaluationEngine()
    a = monte_carlo(dnn_comparator, small_scenario, [intensity_dist],
                    n_samples=15, seed=3, engine=engine)
    b = monte_carlo(dnn_comparator, small_scenario, [intensity_dist],
                    n_samples=15, seed=3, engine=engine)
    np.testing.assert_array_equal(a.ratios, b.ratios)
    # The second run is served entirely from the cache.
    assert engine.cache_stats.misses == 15


def test_tornado_parity_with_seed_loop(dnn_comparator, small_scenario,
                                       intensity_dist):
    result = tornado(dnn_comparator, small_scenario, [intensity_dist],
                     engine=EvaluationEngine())
    assert result.baseline_ratio == dnn_comparator.ratio(small_scenario)
    entry = result.entries[0]
    assert entry.ratio_at_low == _set_use_intensity(
        dnn_comparator, intensity_dist.low
    ).ratio(small_scenario)
    assert entry.ratio_at_high == _set_use_intensity(
        dnn_comparator, intensity_dist.high
    ).ratio(small_scenario)


def test_analyses_share_default_engine_cache(dnn_comparator, small_scenario):
    """Calling without an engine must route through the shared default."""
    engine = default_engine()
    engine.clear_cache()
    sweep(dnn_comparator, small_scenario, "num_apps", [1, 2, 3])
    misses_after_first = engine.cache_stats.misses
    sweep(dnn_comparator, small_scenario, "num_apps", [1, 2, 3])
    assert engine.cache_stats.misses == misses_after_first
    assert engine.cache_stats.hits >= 3


# ----------------------------------------------------------------------
# Ratio edge cases (zero ASIC total) and Monte-Carlo robustness
# ----------------------------------------------------------------------


def _fake_comparison(fpga_total: float, asic_total: float) -> ComparisonResult:
    return ComparisonResult(
        scenario=Scenario(),
        fpga=FpgaAssessment(
            footprint=CarbonFootprint(operational=fpga_total),
            per_chip_embodied_kg=0.0,
            n_fpga_per_unit=1,
            generations=1,
        ),
        asic=AsicAssessment(
            footprint=CarbonFootprint(operational=asic_total),
            per_chip_embodied_kg=0.0,
            per_application=(),
        ),
    )


def test_zero_asic_total_gives_infinite_ratio():
    result = _fake_comparison(10.0, 0.0)
    assert result.ratio == math.inf
    assert result.winner == "asic"
    assert result.summary()["ratio"] == math.inf


def test_both_totals_zero_is_a_tie():
    result = _fake_comparison(0.0, 0.0)
    assert result.ratio == 1.0
    assert result.winner == "asic"  # ties go to the ASIC


def test_negative_fpga_total_with_zero_asic_total_wins():
    """Net recycling credits can push a total negative: FPGA is greener."""
    result = _fake_comparison(-0.5, 0.0)
    assert result.ratio == -math.inf
    assert result.winner == "fpga"


def test_winner_correct_for_negative_asic_totals():
    """With a negative ASIC total the quotient's sign inverts; the
    winner must still follow the totals themselves."""
    both_negative = _fake_comparison(-5.0, -1.0)
    assert both_negative.ratio == pytest.approx(5.0)
    assert both_negative.winner == "fpga"  # -5 kg is greener than -1 kg
    asic_negative = _fake_comparison(10.0, -2.0)
    assert asic_negative.ratio == pytest.approx(-5.0)
    assert asic_negative.winner == "asic"  # -2 kg is greener than 10 kg


def test_cached_result_carries_the_requested_scenario(dnn_comparator):
    """Equivalent lifetime spellings share the cache but keep their own
    scenario object on the returned result."""
    engine = EvaluationEngine()
    scalar = Scenario(num_apps=2, app_lifetime_years=2.0, volume=1_000)
    expanded = Scenario(num_apps=2, app_lifetime_years=[2.0, 2.0], volume=1_000)
    first = engine.evaluate(dnn_comparator, scalar)
    second = engine.evaluate(dnn_comparator, expanded)
    assert engine.cache_stats.misses == 1  # one assessment served both
    assert first.scenario == scalar
    assert second.scenario == expanded
    assert first.summary() == second.summary()


def test_win_probability_robust_to_non_finite_ratios():
    ratios = np.array([0.5, math.inf, 2.0, math.nan, 0.9])
    result = MonteCarloResult(ratios=ratios, samples=({},) * 5)
    assert result.fpga_win_probability == pytest.approx(2 / 5)
    assert result.n_non_finite == 2
    assert 0.0 <= result.fpga_win_probability <= 1.0


def test_quantiles_and_summary_use_finite_draws():
    ratios = np.array([0.5, math.inf, 1.5])
    result = MonteCarloResult(ratios=ratios, samples=({},) * 3)
    quantiles = result.quantiles((0.5,))
    assert quantiles[0.5] == pytest.approx(1.0)
    summary = result.summary()
    assert summary["ratio_mean"] == pytest.approx(1.0)
    assert math.isfinite(summary["ratio_p95"])


def test_all_non_finite_draws_do_not_raise():
    ratios = np.array([math.inf, math.nan])
    result = MonteCarloResult(ratios=ratios, samples=({},) * 2)
    assert result.fpga_win_probability == 0.0
    assert math.isnan(result.summary()["ratio_mean"])
    assert math.isnan(result.quantiles((0.5,))[0.5])


def test_touch_point_on_comparison_curve_is_not_a_crossover():
    """Curves that touch (equal totals) at one grid point never cross.

    End-to-end over the ratio path: equal totals give ratio == 1 (a tie,
    winner "asic") and a zero difference, which crossover detection must
    not report as a sign change.
    """
    from repro.analysis.crossover import find_crossovers

    comparisons = [
        _fake_comparison(2.0, 1.0),   # ASIC greener
        _fake_comparison(1.5, 1.5),   # touch point
        _fake_comparison(2.0, 1.0),   # ASIC greener again
    ]
    touch = comparisons[1]
    assert touch.ratio == 1.0 and touch.winner == "asic"
    crossovers = find_crossovers(
        [1.0, 2.0, 3.0],
        [c.fpga.footprint.total for c in comparisons],
        [c.asic.footprint.total for c in comparisons],
    )
    assert crossovers == []


def test_zero_asic_touch_point_in_sweep_totals():
    """A both-zero tie inside a sweep stays finite and crossover-free."""
    from repro.analysis.crossover import find_crossovers

    comparisons = [
        _fake_comparison(1.0, 2.0),   # FPGA greener
        _fake_comparison(0.0, 0.0),   # degenerate tie
        _fake_comparison(1.0, 2.0),
    ]
    assert [c.ratio for c in comparisons] == [0.5, 1.0, 0.5]
    crossovers = find_crossovers(
        [1.0, 2.0, 3.0],
        [c.fpga.footprint.total for c in comparisons],
        [c.asic.footprint.total for c in comparisons],
    )
    assert crossovers == []


# ----------------------------------------------------------------------
# Default-engine lifecycle (atexit hook, reset, configure)
# ----------------------------------------------------------------------


def test_reset_default_engine_discards_shared_state(dnn_comparator,
                                                    small_scenario):
    from repro.engine import reset_default_engine

    first = default_engine()
    first.evaluate(dnn_comparator, small_scenario)
    assert first.cache_stats.size >= 1
    reset_default_engine()
    fresh = default_engine()
    assert fresh is not first
    assert fresh.cache_stats.size == 0
    reset_default_engine()  # idempotent; also closes the fresh engine


def test_configure_default_engine_replaces_and_applies_options():
    from repro.engine import (
        configure_default_engine,
        default_engine,
        reset_default_engine,
        resolve_engine,
    )

    configured = configure_default_engine(vectorize=False, cache_size=16)
    try:
        assert default_engine() is configured
        assert resolve_engine(None) is configured
        assert configured.vectorize is False
        assert configured.cache_stats.maxsize == 16
    finally:
        reset_default_engine()  # restore a pristine default for other tests


def test_default_engine_close_is_registered_at_exit():
    """Importing the engine module must register the atexit reset hook.

    Reloads the module with ``atexit.register`` instrumented: deleting
    the ``atexit.register(reset_default_engine)`` line makes this fail.
    The duplicate registration the reload leaves behind is harmless —
    ``reset_default_engine`` is idempotent.
    """
    import atexit
    import importlib

    from repro.engine import engine as engine_module

    recorded = []
    real_register = atexit.register

    def recording_register(fn, *args, **kwargs):
        recorded.append(fn)
        return real_register(fn, *args, **kwargs)

    atexit.register = recording_register
    try:
        importlib.reload(engine_module)
    finally:
        atexit.register = real_register
    assert engine_module.reset_default_engine in recorded


def test_close_shuts_down_lazy_pool(dnn_comparator):
    engine = EvaluationEngine(workers=2, chunk_size=1, vectorize=False)
    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=1.0, volume=100)
        for n in range(1, 5)
    ]
    engine.evaluate_many(dnn_comparator, scenarios)  # starts the pool
    assert engine._pool is not None
    engine.close()
    assert engine._pool is None
