"""Smoke tests: every example script must run cleanly."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {p.name for p in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    # Examples use only the installed package; run each as __main__.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
