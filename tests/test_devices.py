"""Tests for FPGA/ASIC device specs and N_FPGA sizing."""

import pytest

from repro.devices.asic import AsicDevice
from repro.devices.fpga import FpgaDevice
from repro.errors import ParameterError


class TestAsicDevice:
    def test_gates_derived_from_area(self):
        device = AsicDevice("a", area_mm2=100.0, node_name="10nm", peak_power_w=5.0)
        assert device.logic_gates_mgates == pytest.approx(100.0 * 11.5)

    def test_explicit_gates_override(self):
        device = AsicDevice(
            "a", area_mm2=100.0, node_name="10nm", peak_power_w=5.0, gates_mgates=42.0
        )
        assert device.logic_gates_mgates == 42.0

    def test_node_resolution(self):
        device = AsicDevice("a", area_mm2=100.0, node_name="7nm", peak_power_w=5.0)
        assert device.node.feature_nm == 7.0

    def test_default_lifetime_in_paper_range(self):
        device = AsicDevice("a", area_mm2=100.0, node_name="10nm", peak_power_w=5.0)
        assert 5.0 <= device.chip_lifetime_years <= 8.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            AsicDevice("a", area_mm2=-1.0, node_name="10nm", peak_power_w=5.0)
        with pytest.raises(ParameterError):
            AsicDevice("a", area_mm2=10.0, node_name="10nm", peak_power_w=0.0)


class TestFpgaDevice:
    def test_default_lifetime_matches_paper(self):
        device = FpgaDevice("f", area_mm2=100.0, node_name="10nm", peak_power_w=5.0)
        assert device.chip_lifetime_years == 15.0

    def test_capacity_derived_with_fabric_overhead(self):
        device = FpgaDevice("f", area_mm2=100.0, node_name="10nm", peak_power_w=5.0)
        raw = 100.0 * 11.5
        assert device.logic_capacity_mgates == pytest.approx(raw / device.fabric_overhead)

    def test_explicit_capacity(self):
        device = FpgaDevice(
            "f", area_mm2=100.0, node_name="10nm", peak_power_w=5.0, capacity_mgates=50.0
        )
        assert device.logic_capacity_mgates == 50.0

    def test_units_required_default_is_one(self):
        device = FpgaDevice("f", area_mm2=100.0, node_name="10nm", peak_power_w=5.0)
        assert device.units_required(None) == 1

    def test_units_required_ceil(self):
        device = FpgaDevice(
            "f", area_mm2=100.0, node_name="10nm", peak_power_w=5.0, capacity_mgates=10.0
        )
        assert device.units_required(10.0) == 1
        assert device.units_required(10.1) == 2
        assert device.units_required(35.0) == 4

    def test_units_required_small_app(self):
        device = FpgaDevice(
            "f", area_mm2=100.0, node_name="10nm", peak_power_w=5.0, capacity_mgates=10.0
        )
        assert device.units_required(0.001) == 1

    def test_units_required_rejects_non_positive(self):
        device = FpgaDevice("f", area_mm2=100.0, node_name="10nm", peak_power_w=5.0)
        with pytest.raises(ParameterError):
            device.units_required(0.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            FpgaDevice("f", area_mm2=100.0, node_name="10nm", peak_power_w=5.0,
                       fabric_overhead=0.0)
