"""End-to-end integration tests across the public API."""

import pytest

from repro import (
    AsicLifecycleModel,
    CarbonFootprint,
    FpgaLifecycleModel,
    ModelSuite,
    PlatformComparator,
    Scenario,
    compare_domain,
    get_domain,
    get_industry_device,
)
from repro.analysis.crossover import find_crossovers
from repro.analysis.sweep import sweep
from repro.config import default_parameters


def test_public_api_quickstart():
    """The README quickstart must work verbatim."""
    result = compare_domain(
        "dnn", Scenario(num_apps=6, app_lifetime_years=2.0, volume=1_000_000)
    )
    assert result.winner in ("fpga", "asic")
    assert result.ratio > 0.0


def test_footprints_internally_consistent(baseline_scenario):
    comparison = compare_domain("imgproc", baseline_scenario)
    for assessment in (comparison.fpga, comparison.asic):
        fp = assessment.footprint
        assert isinstance(fp, CarbonFootprint)
        assert fp.total == pytest.approx(fp.embodied + fp.deployment)


def test_parameters_to_crossover_pipeline():
    """Config -> suite -> comparator -> sweep -> crossover, end to end."""
    suite = default_parameters().with_overrides(duty_cycle=0.2).build_suite()
    comparator = PlatformComparator.for_domain("dnn", suite)
    base = Scenario(num_apps=1, app_lifetime_years=2.0, volume=1_000_000)
    result = sweep(comparator, base, "num_apps", list(range(1, 13)))
    crossings = find_crossovers(result.values, result.fpga_totals, result.asic_totals)
    assert any(c.kind == "A2F" for c in crossings)


def test_industry_device_assessment_magnitudes():
    """TPU-like ASIC at 1M units: operational CFP must reach megatons."""
    device = get_industry_device("industry_asic2")
    model = AsicLifecycleModel(device, ModelSuite.default())
    fp = model.assess(Scenario(num_apps=1, app_lifetime_years=6.0, volume=1_000_000)).footprint
    assert fp.operational > 1.0e8  # > 100 kt CO2e
    assert fp.manufacturing > 1.0e6


def test_fpga_vs_asic_equation_structure(baseline_scenario, suite):
    """Eq. (1) vs Eq. (2): the ASIC total equals a per-app sum; the FPGA
    total equals one embodied cost plus per-app deployment."""
    domain = get_domain("dnn")
    fpga_model = FpgaLifecycleModel(domain.fpga_device(), suite)
    asic_model = AsicLifecycleModel(domain.asic_device(), suite)

    asic = asic_model.assess(baseline_scenario)
    per_app_sum = sum(fp.total for fp in asic.per_application)
    assert asic.footprint.total == pytest.approx(per_app_sum)

    fpga = fpga_model.assess(baseline_scenario)
    single = fpga_model.assess(baseline_scenario.with_num_apps(1))
    deploy_per_app = single.footprint.deployment
    expected = single.footprint.embodied + 5 * deploy_per_app
    assert fpga.footprint.total == pytest.approx(expected, rel=1e-9)


def test_suite_override_threading(baseline_scenario):
    """Overridden sub-models must actually reach the assessment."""
    from repro.eol.model import EolModel

    aggressive = ModelSuite.default().with_overrides(
        eol=EolModel(recycled_fraction=1.0)
    )
    base = compare_domain("dnn", baseline_scenario).fpga.footprint.eol
    recycled = compare_domain("dnn", baseline_scenario, aggressive).fpga.footprint.eol
    assert recycled < base


def test_version_exposed():
    import repro

    assert repro.__version__
