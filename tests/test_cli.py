"""Tests for the greenfpga CLI."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out
    assert "dnn" in out
    assert "industry_fpga1" in out


def test_compare_command(capsys):
    assert main(["compare", "--domain", "crypto", "--apps", "3",
                 "--lifetime", "1.0", "--volume", "1e5"]) == 0
    out = capsys.readouterr().out
    assert "FPGA" in out and "ASIC" in out
    assert "winner" in out.lower()


def test_compare_default_arguments(capsys):
    assert main(["compare"]) == 0
    assert "ratio" in capsys.readouterr().out


def test_run_command(capsys):
    assert main(["run", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out


def test_run_with_csv_export(tmp_path, capsys):
    assert main(["run", "tables", "--csv-dir", str(tmp_path)]) == 0
    assert list(tmp_path.glob("tables_*.csv"))


def test_run_unknown_experiment():
    with pytest.raises(KeyError):
        main(["run", "fig99"])


def test_bad_domain_rejected():
    with pytest.raises(SystemExit):
        main(["compare", "--domain", "gpu"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_compare_with_cache_stats(capsys):
    from repro.engine import reset_default_engine

    reset_default_engine()
    try:
        assert main(["--cache-stats", "compare", "--domain", "dnn"]) == 0
        out = capsys.readouterr().out
        assert "evaluation-engine cache" in out
        assert "misses" in out
    finally:
        reset_default_engine()


def test_compare_no_vectorize_matches_default(capsys):
    from repro.engine import reset_default_engine

    reset_default_engine()
    try:
        assert main(["compare", "--domain", "crypto"]) == 0
        default_out = capsys.readouterr().out
        assert main(["--no-vectorize", "compare", "--domain", "crypto"]) == 0
        scalar_out = capsys.readouterr().out
        assert scalar_out == default_out  # identical numbers either way
    finally:
        reset_default_engine()


def test_run_with_workers_flag(capsys):
    from repro.engine import default_engine, reset_default_engine

    reset_default_engine()
    try:
        assert main(["--workers", "2", "--cache-stats", "run", "fig2"]) == 0
        assert default_engine().workers == 2
        out = capsys.readouterr().out
        assert "evaluation-engine cache" in out
    finally:
        reset_default_engine()


def test_cache_file_warms_across_cli_runs(tmp_path, capsys):
    from repro.engine import default_engine, reset_default_engine

    cache = tmp_path / "warm.npz"
    reset_default_engine()
    try:
        assert main(["--cache-file", str(cache), "compare"]) == 0
        assert cache.exists()
        first_out = capsys.readouterr().out
        reset_default_engine()  # simulate a fresh process
        assert main(["--cache-file", str(cache), "compare"]) == 0
        second_out = capsys.readouterr().out
        assert second_out == first_out
        stats = default_engine().cache_stats
        assert stats.hits >= 1 and stats.misses == 0  # served from disk
    finally:
        reset_default_engine()


def test_cache_shards_flag_configures_store(capsys):
    from repro.engine import default_engine, reset_default_engine

    reset_default_engine()
    try:
        assert main(["--cache-shards", "3", "compare"]) == 0
        assert default_engine().result_store.n_shards == 3
    finally:
        reset_default_engine()


def test_serve_bench_command(capsys):
    assert main([
        "serve-bench", "--clients", "2", "--requests", "3",
        "--cells", "10", "--window-ms", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "async serving" in out
    assert "warm_concurrent_2" in out
    assert "serialized dispatch" in out


def test_serve_bench_persists_to_cache_file(tmp_path, capsys):
    """--cache-file must hold the benchmark's warm store, not get
    clobbered by an end-of-run save of the untouched default engine."""
    from repro.engine import ShardedResultStore, reset_default_engine

    cache = tmp_path / "bench-warm.npz"
    reset_default_engine()
    try:
        assert main([
            "--cache-file", str(cache),
            "serve-bench", "--clients", "2", "--requests", "3",
            "--cells", "10", "--window-ms", "1",
        ]) == 0
        capsys.readouterr()
        store = ShardedResultStore(capacity=4096)
        assert store.load(cache) == 3 * 10  # the benchmark's cell universe
    finally:
        reset_default_engine()
