"""Tests for the greenfpga CLI."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out
    assert "dnn" in out
    assert "industry_fpga1" in out


def test_compare_command(capsys):
    assert main(["compare", "--domain", "crypto", "--apps", "3",
                 "--lifetime", "1.0", "--volume", "1e5"]) == 0
    out = capsys.readouterr().out
    assert "FPGA" in out and "ASIC" in out
    assert "winner" in out.lower()


def test_compare_default_arguments(capsys):
    assert main(["compare"]) == 0
    assert "ratio" in capsys.readouterr().out


def test_run_command(capsys):
    assert main(["run", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out


def test_run_with_csv_export(tmp_path, capsys):
    assert main(["run", "tables", "--csv-dir", str(tmp_path)]) == 0
    assert list(tmp_path.glob("tables_*.csv"))


def test_run_unknown_experiment():
    with pytest.raises(KeyError):
        main(["run", "fig99"])


def test_bad_domain_rejected():
    with pytest.raises(SystemExit):
        main(["compare", "--domain", "gpu"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_compare_with_cache_stats(capsys):
    from repro.engine import reset_default_engine

    reset_default_engine()
    try:
        assert main(["--cache-stats", "compare", "--domain", "dnn"]) == 0
        out = capsys.readouterr().out
        assert "evaluation-engine cache" in out
        assert "misses" in out
    finally:
        reset_default_engine()


def test_compare_no_vectorize_matches_default(capsys):
    from repro.engine import reset_default_engine

    reset_default_engine()
    try:
        assert main(["compare", "--domain", "crypto"]) == 0
        default_out = capsys.readouterr().out
        assert main(["--no-vectorize", "compare", "--domain", "crypto"]) == 0
        scalar_out = capsys.readouterr().out
        assert scalar_out == default_out  # identical numbers either way
    finally:
        reset_default_engine()


def test_run_with_workers_flag(capsys):
    from repro.engine import default_engine, reset_default_engine

    reset_default_engine()
    try:
        assert main(["--workers", "2", "--cache-stats", "run", "fig2"]) == 0
        assert default_engine().workers == 2
        out = capsys.readouterr().out
        assert "evaluation-engine cache" in out
    finally:
        reset_default_engine()


def test_cache_file_warms_across_cli_runs(tmp_path, capsys):
    from repro.engine import default_engine, reset_default_engine

    cache = tmp_path / "warm.npz"
    reset_default_engine()
    try:
        assert main(["--cache-file", str(cache), "compare"]) == 0
        assert cache.exists()
        first_out = capsys.readouterr().out
        reset_default_engine()  # simulate a fresh process
        assert main(["--cache-file", str(cache), "compare"]) == 0
        second_out = capsys.readouterr().out
        assert second_out == first_out
        stats = default_engine().cache_stats
        assert stats.hits >= 1 and stats.misses == 0  # served from disk
    finally:
        reset_default_engine()


def test_cache_shards_flag_configures_store(capsys):
    from repro.engine import default_engine, reset_default_engine

    reset_default_engine()
    try:
        assert main(["--cache-shards", "3", "compare"]) == 0
        assert default_engine().result_store.n_shards == 3
    finally:
        reset_default_engine()


def test_serve_bench_command(capsys):
    assert main([
        "serve-bench", "--clients", "2", "--requests", "3",
        "--cells", "10", "--window-ms", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "async serving" in out
    assert "warm_concurrent_2" in out
    assert "serialized dispatch" in out


def test_serve_bench_persists_to_cache_file(tmp_path, capsys):
    """--cache-file must hold the benchmark's warm store, not get
    clobbered by an end-of-run save of the untouched default engine."""
    from repro.engine import ShardedResultStore, reset_default_engine

    cache = tmp_path / "bench-warm.npz"
    reset_default_engine()
    try:
        assert main([
            "--cache-file", str(cache),
            "serve-bench", "--clients", "2", "--requests", "3",
            "--cells", "10", "--window-ms", "1",
        ]) == 0
        capsys.readouterr()
        store = ShardedResultStore(capacity=4096)
        assert store.load(cache) == 3 * 10  # the benchmark's cell universe
    finally:
        reset_default_engine()


def test_mc_stream_command_prints_throughput_and_rss(capsys):
    from repro.engine import reset_default_engine

    reset_default_engine()
    try:
        assert main([
            "mc", "--draws", "2000", "--stream", "--chunk-rows", "1024",
            "--mc-workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "streaming reduction" in out
        assert "draws/s" in out
        assert "peak RSS" in out
        assert "fpga_win_probability" in out
    finally:
        reset_default_engine()


def test_mc_stream_matches_materialized_summary(capsys):
    from repro.engine import reset_default_engine

    reset_default_engine()
    try:
        assert main(["mc", "--draws", "2000"]) == 0
        materialized = capsys.readouterr().out
        assert main(["mc", "--draws", "2000", "--stream",
                     "--mc-workers", "1"]) == 0
        streamed = capsys.readouterr().out

        def metric(out: str, name: str) -> str:
            return next(
                line.split("|")[1].strip()
                for line in out.splitlines() if line.startswith(name)
            )

        # win probability is an exact counter in both modes
        assert metric(streamed, "fpga_win_probability") == metric(
            materialized, "fpga_win_probability"
        )
    finally:
        reset_default_engine()


def test_mc_stream_knobs_require_stream_flag():
    with pytest.raises(SystemExit) as excinfo:
        main(["mc", "--draws", "100", "--mc-workers", "2"])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit):
        main(["mc", "--draws", "100", "--chunk-rows", "64"])
    with pytest.raises(SystemExit):
        main(["mc", "--draws", "100", "--checkpoint", "ck.bin"])


def test_mc_checkpoint_every_requires_checkpoint():
    with pytest.raises(SystemExit) as excinfo:
        main(["mc", "--stream", "--draws", "100", "--checkpoint-every", "64"])
    assert excinfo.value.code == 2


def test_mc_stream_checkpoint_resumes_from_file(tmp_path, capsys):
    """The CLI wires --checkpoint/--checkpoint-every through to the
    streaming path: a finished checkpoint is picked up on the rerun and
    the reported summary is identical."""
    ckpt = tmp_path / "mc.ckpt"
    args = [
        "mc", "--stream", "--draws", "512", "--seed", "9",
        "--chunk-rows", "128", "--mc-workers", "1",
        "--checkpoint", str(ckpt), "--checkpoint-every", "128",
    ]
    from repro.engine import reset_default_engine

    def metrics(out: str) -> list[str]:
        # Drop the run header (wall time / RSS vary); keep the table.
        return [line for line in out.splitlines() if "|" in line]

    try:
        main(args)
        first = capsys.readouterr().out
        assert ckpt.exists()
        main(args)  # resumes (here: fully short-circuits) from the file
        second = capsys.readouterr().out
        assert metrics(first) == metrics(second)
        assert metrics(first)
    finally:
        reset_default_engine()
