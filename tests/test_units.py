"""Tests for unit conversions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_hours_per_year():
    assert units.HOURS_PER_YEAR == 365 * 24


def test_mm2_cm2_round_trip():
    assert units.mm2_to_cm2(100.0) == 1.0
    assert units.cm2_to_mm2(1.0) == 100.0


@given(st.floats(min_value=1e-6, max_value=1e9, allow_nan=False))
def test_area_round_trip_property(area):
    assert math.isclose(units.cm2_to_mm2(units.mm2_to_cm2(area)), area, rel_tol=1e-12)


def test_grams_tons():
    assert units.grams_to_tons(1_000_000.0) == 1.0
    assert units.tons_to_kg(1.0) == 1000.0
    assert units.kg_to_tons(1000.0) == 1.0


def test_gwh_to_kwh():
    assert units.gwh_to_kwh(7.3) == pytest.approx(7.3e6)


def test_g_per_kwh_to_kg_per_kwh():
    assert units.g_per_kwh_to_kg_per_kwh(475.0) == pytest.approx(0.475)


def test_months_to_hours_is_year_fraction():
    assert units.months_to_hours(12.0) == pytest.approx(units.HOURS_PER_YEAR)


def test_years_to_hours():
    assert units.years_to_hours(2.0) == pytest.approx(2 * 8760.0)


def test_annual_energy_kwh_full_duty():
    # 1 kW at 100% duty = 8760 kWh/year.
    assert units.annual_energy_kwh(1000.0, 1.0) == pytest.approx(8760.0)


def test_annual_energy_kwh_zero_duty():
    assert units.annual_energy_kwh(1000.0, 0.0) == 0.0


@given(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_annual_energy_monotone_in_duty(power, duty):
    assert units.annual_energy_kwh(power, duty) <= units.annual_energy_kwh(power, 1.0)


def test_reticle_limit_value():
    assert units.RETICLE_LIMIT_MM2 == pytest.approx(858.0)
