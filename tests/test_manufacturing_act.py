"""Tests for the ACT-style manufacturing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.nodes import get_node
from repro.manufacturing.act import FabProfile, ManufacturingModel


@pytest.fixture
def model():
    return ManufacturingModel()


def test_carbon_per_cm2_composition(model, node10):
    expected = (
        node10.epa_kwh_per_cm2 * model.fab.carbon_intensity_kg_per_kwh
        + node10.gpa_kg_per_cm2
        + node10.mpa_new_kg_per_cm2
    )
    assert model.carbon_per_cm2(node10) == pytest.approx(expected)


def test_assess_die_components_sum(model, node10):
    result = model.assess_die(100.0, node10)
    assert result.total_kg == pytest.approx(
        result.energy_kg + result.gas_kg + result.material_kg
    )
    assert 0.0 < result.die_yield <= 1.0


def test_per_die_increases_with_area(model, node10):
    small = model.per_die_kg(50.0, node10)
    large = model.per_die_kg(400.0, node10)
    assert large > small


def test_yield_superlinearity(model, node10):
    """Per-mm2 footprint grows with die size because yield drops."""
    small = model.per_die_kg(50.0, node10) / 50.0
    large = model.per_die_kg(500.0, node10) / 500.0
    assert large > small


def test_cleaner_fab_lowers_footprint(node10):
    dirty = ManufacturingModel(fab=FabProfile(energy_source="coal"))
    clean = ManufacturingModel(fab=FabProfile(energy_source="wind"))
    assert clean.per_die_kg(100.0, node10) < dirty.per_die_kg(100.0, node10)


def test_gas_abatement_lowers_gas_component(node10):
    base = ManufacturingModel().assess_die(100.0, node10)
    abated = ManufacturingModel(fab=FabProfile(gas_abatement=0.9)).assess_die(100.0, node10)
    assert abated.gas_kg == pytest.approx(base.gas_kg * 0.1)
    assert abated.energy_kg == pytest.approx(base.energy_kg)


def test_recycled_fraction_lowers_material_component(node10):
    base = ManufacturingModel().assess_die(100.0, node10)
    recycled = ManufacturingModel(recycled_fraction=1.0).assess_die(100.0, node10)
    assert recycled.material_kg < base.material_kg
    assert recycled.total_kg < base.total_kg


def test_charge_wafer_waste_flag(node10):
    with_waste = ManufacturingModel(charge_wafer_waste=True).assess_die(100.0, node10)
    without = ManufacturingModel(charge_wafer_waste=False).assess_die(100.0, node10)
    assert with_waste.wafer_area_share_cm2 > without.wafer_area_share_cm2
    assert with_waste.total_kg > without.total_kg


def test_advanced_node_dirtier_per_area(model):
    old = model.per_die_kg(100.0, get_node("28nm"))
    new = model.per_die_kg(100.0, get_node("5nm"))
    assert new > old


@settings(max_examples=25)
@given(st.floats(min_value=10.0, max_value=800.0))
def test_per_die_positive_for_any_die(area):
    model = ManufacturingModel()
    assert model.per_die_kg(area, get_node("10nm")) > 0.0


def test_result_as_dict_keys(model, node10):
    result = model.assess_die(100.0, node10)
    assert set(result.as_dict()) == {
        "total_kg", "energy_kg", "gas_kg", "material_kg",
        "die_yield", "wafer_area_share_cm2",
    }
