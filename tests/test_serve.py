"""Serving tier: wire protocol, fault plans, server behaviour.

Unit coverage for the length-prefixed batch protocol (round-trips,
truncation, hostile frames), the deterministic :class:`FaultPlan`, and
end-to-end server behaviour that does not need injected chaos:
bit-identity through real sockets, graceful degradation with zero
workers, backpressure shedding, deadlines, and hostile-bytes rejection.
The injected-fault scenarios (kills, crash loops, frame truncation)
live in ``tests/test_serve_chaos.py``.
"""

from __future__ import annotations

import asyncio
import struct
import time

import numpy as np
import pytest

from repro.core.comparison import PlatformComparator
from repro.engine.engine import EvaluationEngine
from repro.engine.serve import protocol
from repro.engine.serve.backoff import JitteredBackoff
from repro.engine.serve.client import ServeClient
from repro.engine.serve.faults import FaultPlan
from repro.engine.serve.protocol import (
    DeadlineError,
    ProtocolError,
    RemoteError,
)
from repro.engine.serve.server import BatchServer
from repro.engine.vector.columns import ScenarioBatch
from repro.errors import ParameterError


def _batch(n: int = 6) -> ScenarioBatch:
    return ScenarioBatch.from_arrays(
        num_apps=np.arange(1, n + 1, dtype=np.int64),
        lifetime=np.linspace(0.5, 3.0, n),
        volume=1_000_000,
    )


def _read_frame_from(data: bytes) -> "protocol.Frame | None":
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await protocol.read_frame(reader)

    return asyncio.run(main())


# ----------------------------------------------------------------------
# Protocol round-trips
# ----------------------------------------------------------------------


def test_request_frame_round_trips_bit_identically():
    batch = _batch(8)
    frame = _read_frame_from(
        protocol.encode_request(42, "dnn", batch, deadline_ms=1500)
    )
    assert frame.type == protocol.MSG_REQUEST
    assert frame.request_id == 42
    assert frame.deadline_ms == 1500
    domain, decoded = protocol.decode_request(frame.payload)
    assert domain == "dnn"
    np.testing.assert_array_equal(decoded.num_apps, batch.num_apps)
    np.testing.assert_array_equal(decoded.lifetime, batch.lifetime)
    np.testing.assert_array_equal(decoded.volume, batch.volume)
    assert decoded.all_covered


def test_request_round_trip_preserves_optional_columns():
    batch = ScenarioBatch.from_arrays(
        num_apps=np.array([2, 3], dtype=np.int64),
        lifetime=np.array([1.0, 2.0]),
        volume=np.array([1000, 2000], dtype=np.int64),
        evaluation_years=np.array([6.0, 8.0]),
        app_size_mgates=np.array([4.0, 5.0]),
        enforce_chip_lifetime=np.array([True, False]),
    )
    _, decoded = protocol.decode_request(
        _read_frame_from(protocol.encode_request(1, "dnn", batch)).payload
    )
    np.testing.assert_array_equal(
        decoded.evaluation_years, batch.evaluation_years
    )
    np.testing.assert_array_equal(
        decoded.app_size_mgates, batch.app_size_mgates
    )
    np.testing.assert_array_equal(
        decoded.enforce_chip_lifetime, batch.enforce_chip_lifetime
    )
    # Defaulted optionals (all-NaN on the wire) come back as defaults,
    # preserving digest identity with a locally built batch.
    _, plain = protocol.decode_request(
        _read_frame_from(protocol.encode_request(2, "dnn", _batch())).payload
    )
    assert np.isnan(plain.evaluation_years).all()


def test_encode_request_rejects_uncovered_batches():
    from repro.core.scenario import Scenario

    ragged = ScenarioBatch.from_scenarios(
        (Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=10),)
    )
    with pytest.raises(ProtocolError, match="covered"):
        protocol.encode_request(1, "dnn", ragged)


def test_response_error_retry_deadline_frames_round_trip():
    ratios = np.linspace(0.5, 2.0, 5)
    winners = np.array([1, 0, 1, 0, 1], dtype=np.uint8)
    fpga = np.linspace(10.0, 50.0, 5)
    asic = np.linspace(9.0, 45.0, 5)
    frame = _read_frame_from(
        protocol.encode_response(7, ratios, winners, fpga, asic)
    )
    out = protocol.decode_response(frame.payload)
    for sent, got in zip((ratios, winners, fpga, asic), out):
        np.testing.assert_array_equal(sent, got)

    error = _read_frame_from(protocol.encode_error(8, "boom × unicode"))
    assert error.type == protocol.MSG_ERROR
    assert protocol.decode_error(error.payload) == "boom × unicode"

    retry = _read_frame_from(protocol.encode_retry_after(9, 0.125))
    assert retry.type == protocol.MSG_RETRY_AFTER
    assert protocol.decode_retry_after(retry.payload) == 0.125

    deadline = _read_frame_from(protocol.encode_deadline(10))
    assert deadline.type == protocol.MSG_DEADLINE
    assert deadline.payload == b""


# ----------------------------------------------------------------------
# Protocol hostility
# ----------------------------------------------------------------------


def test_read_frame_clean_eof_is_none():
    assert _read_frame_from(b"") is None


def test_read_frame_truncated_header_and_payload_raise():
    whole = protocol.encode_request(3, "dnn", _batch())
    with pytest.raises(ProtocolError, match="truncated header"):
        _read_frame_from(whole[: protocol.HEADER_SIZE - 4])
    with pytest.raises(ProtocolError, match="truncated payload"):
        _read_frame_from(whole[: protocol.HEADER_SIZE + 10])


def test_read_frame_rejects_bad_magic_version_and_length():
    whole = bytearray(protocol.encode_request(3, "dnn", _batch()))
    bad_magic = bytes(b"XXXX") + bytes(whole[4:])
    with pytest.raises(ProtocolError, match="bad magic"):
        _read_frame_from(bad_magic)
    bad_version = bytes(whole[:4]) + b"\xff" + bytes(whole[5:])
    with pytest.raises(ProtocolError, match="version"):
        _read_frame_from(bad_version)
    hostile = protocol._HEADER.pack(
        protocol.MAGIC, protocol.PROTOCOL_VERSION, protocol.MSG_REQUEST,
        0, 1, 0, protocol.MAX_PAYLOAD_BYTES + 1,
    )
    with pytest.raises(ProtocolError, match="exceeds"):
        _read_frame_from(hostile)


def test_decode_request_rejects_malformed_payloads():
    with pytest.raises(ProtocolError):
        protocol.decode_request(b"")
    with pytest.raises(ProtocolError):
        protocol.decode_request(struct.pack("!H", 500) + b"dn")  # short name
    with pytest.raises(ProtocolError, match="undecodable"):
        protocol.decode_request(
            struct.pack("!H", 2) + b"\xff\xfe" + struct.pack("!I", 1) + b"x" * 41
        )
    good = protocol.encode_request(1, "dnn", _batch())[protocol.HEADER_SIZE:]
    with pytest.raises(ProtocolError, match="ends inside column"):
        protocol.decode_request(good[:-8])
    with pytest.raises(ProtocolError, match="trailing bytes"):
        protocol.decode_request(good + b"\x00")
    zero_rows = struct.pack("!H", 3) + b"dnn" + struct.pack("!I", 0)
    with pytest.raises(ProtocolError, match="at least one row"):
        protocol.decode_request(zero_rows)


def test_decode_request_validates_scenario_values():
    """Out-of-range rows raise ParameterError (reported as MSG_ERROR by
    the server) rather than evaluating garbage."""
    batch = _batch(2)
    payload = bytearray(
        protocol.encode_request(1, "dnn", batch)[protocol.HEADER_SIZE:]
    )
    offset = 2 + 3 + 4  # domain header
    struct.pack_into("<q", payload, offset, -5)  # num_apps[0] = -5
    with pytest.raises(ParameterError):
        protocol.decode_request(bytes(payload))


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


def test_fault_plan_kill_schedule_and_generations():
    plan = FaultPlan(kill_worker_at=((0, 3), (2, 5)))
    assert plan.kill_batch(0, 0) == 3
    assert plan.kill_batch(2, 0) == 5
    assert plan.kill_batch(1, 0) is None
    assert plan.kill_batch(0, 1) is None  # restart survives by default
    looping = FaultPlan(kill_worker_at=((0, 3),), kill_every_generation=True)
    assert looping.kill_batch(0, 7) == 3


def test_fault_plan_delay_and_truncation_selectors():
    plan = FaultPlan(delay_worker_s=0.5, delay_workers=(1,))
    assert plan.delay_for(1) == 0.5
    assert plan.delay_for(0) == 0.0
    everyone = FaultPlan(delay_worker_s=0.25)
    assert everyone.delay_for(3) == 0.25
    truncating = FaultPlan(truncate_response_every=3)
    assert [truncating.truncates_frame(i) for i in range(1, 7)] == [
        False, False, True, False, False, True,
    ]
    assert not FaultPlan().truncates_frame(1)


def test_fault_plan_corruption_is_seed_deterministic(tmp_path):
    blob = bytes(range(256)) * 8
    a, b = tmp_path / "a.bin", tmp_path / "b.bin"
    a.write_bytes(blob)
    b.write_bytes(blob)
    assert FaultPlan(seed=5).corrupt_file(a, flips=32) == 32
    assert FaultPlan(seed=5).corrupt_file(b, flips=32) == 32
    assert a.read_bytes() == b.read_bytes()  # same seed, same damage
    assert a.read_bytes() != blob
    c = tmp_path / "c.bin"
    c.write_bytes(blob)
    FaultPlan(seed=6).corrupt_file(c, flips=32)
    assert c.read_bytes() != a.read_bytes()

    kept = FaultPlan().truncate_file(a, keep_fraction=0.25)
    assert kept == len(blob) // 4
    assert len(a.read_bytes()) == kept


# ----------------------------------------------------------------------
# Jittered backoff
# ----------------------------------------------------------------------


def test_jittered_backoff_full_mode_spread_and_cap():
    backoff = JitteredBackoff(base_s=0.05, cap_s=2.0, mode="full", seed=11)
    # The ceiling doubles per attempt and saturates at the cap.
    assert backoff.ceiling(1) == 0.05
    assert backoff.ceiling(2) == 0.1
    assert backoff.ceiling(7) == 2.0
    assert backoff.ceiling(1000) == 2.0  # huge attempts must not overflow
    for attempt in range(1, 12):
        delays = [backoff.delay(attempt) for _ in range(50)]
        ceiling = backoff.ceiling(attempt)
        assert all(0.0 <= d <= ceiling for d in delays)
        # Full jitter genuinely spreads: not everyone retries together.
        assert len({round(d, 12) for d in delays}) > 40
    # Per-call base (the server's RETRY_AFTER hint) scales the ceiling.
    assert backoff.ceiling(3, base_s=0.4) == 1.6


def test_jittered_backoff_equal_mode_keeps_escalating_floor():
    backoff = JitteredBackoff(base_s=0.1, cap_s=5.0, mode="equal", seed=7)
    for attempt in range(1, 8):
        ceiling = backoff.ceiling(attempt)
        delays = [backoff.delay(attempt) for _ in range(50)]
        # Equal jitter never drops below half the ceiling: a crash loop
        # cannot be respawned near-instantly by a lucky draw.
        assert all(ceiling / 2.0 <= d <= ceiling for d in delays)
    assert backoff.ceiling(1) < backoff.ceiling(2) < backoff.ceiling(6)


def test_jittered_backoff_seeded_and_validated():
    a = JitteredBackoff(seed=3)
    b = JitteredBackoff(seed=3)
    assert [a.delay(i) for i in (1, 2, 3)] == [b.delay(i) for i in (1, 2, 3)]
    assert JitteredBackoff(seed=3).delay(2) != JitteredBackoff(seed=4).delay(2)
    with pytest.raises(ParameterError, match="base_s"):
        JitteredBackoff(base_s=0.0)
    with pytest.raises(ParameterError, match="cap_s"):
        JitteredBackoff(base_s=1.0, cap_s=0.5)
    with pytest.raises(ParameterError, match="mode"):
        JitteredBackoff(mode="none")
    with pytest.raises(ParameterError, match="attempt"):
        JitteredBackoff().delay(0)


def test_fault_plan_kill_delays_are_seed_deterministic():
    delays = FaultPlan(seed=9).kill_delays(8, 0.05, 0.5)
    assert delays == FaultPlan(seed=9).kill_delays(8, 0.05, 0.5)
    assert delays != FaultPlan(seed=10).kill_delays(8, 0.05, 0.5)
    assert len(delays) == 8
    assert all(0.05 <= d < 0.5 for d in delays)
    assert FaultPlan().kill_delays(0) == ()
    with pytest.raises(ValueError, match="count"):
        FaultPlan().kill_delays(-1)
    with pytest.raises(ValueError, match="hi_s"):
        FaultPlan().kill_delays(2, 0.5, 0.1)


# ----------------------------------------------------------------------
# End-to-end server behaviour (no injected chaos)
# ----------------------------------------------------------------------


def _reference(domain: str, batch: ScenarioBatch):
    engine = EvaluationEngine()
    comparator = PlatformComparator.for_domain(domain)
    result = engine.evaluate_batch(comparator, batch)
    engine.close()
    return result


def test_server_round_trip_bit_identical_to_local():
    batch = _batch(12)
    local = _reference("dnn", batch)

    async def main():
        async with BatchServer(workers=1) as server:
            async with ServeClient(server.host, server.port) as client:
                return await client.evaluate("dnn", batch, deadline_s=30.0)

    served = asyncio.run(main())
    np.testing.assert_array_equal(served.ratios, local.ratios)
    np.testing.assert_array_equal(served.winners, local.winners)
    np.testing.assert_array_equal(served.fpga_totals, local.fpga_totals)
    np.testing.assert_array_equal(served.asic_totals, local.asic_totals)


def test_zero_worker_server_degrades_in_process_bit_identically():
    batch = _batch(8)
    local = _reference("dnn", batch)

    async def main():
        async with BatchServer(workers=0) as server:
            async with ServeClient(server.host, server.port) as client:
                result = await client.evaluate("dnn", batch, deadline_s=30.0)
            return result, server.stats

    served, stats = asyncio.run(main())
    np.testing.assert_array_equal(served.ratios, local.ratios)
    np.testing.assert_array_equal(served.winners, local.winners)
    assert stats.degraded_inprocess >= 1
    assert stats.responses_ok >= 1


def test_worker_periodic_snapshot_rewarms_a_restarted_server(tmp_path):
    """With ``snapshot_every_s`` set, workers re-dump their warm store
    to ``cache_file`` after replies — so a *new* server (a restart)
    starts with the previous fleet's warmth instead of a cold store."""
    cache = tmp_path / "warm.npz"
    batch = _batch(10)

    async def serve_once():
        async with BatchServer(
            workers=1, cache_file=str(cache), snapshot_every_s=0.0,
        ) as server:
            async with ServeClient(server.host, server.port) as client:
                await client.evaluate("dnn", batch, deadline_s=30.0)
            # The snapshot lands after the reply; give the worker loop a
            # beat to write it before the server tears the fleet down.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not cache.exists():
                await asyncio.sleep(0.01)

    asyncio.run(serve_once())
    assert cache.exists(), "worker never snapshotted its warm store"
    warm = EvaluationEngine()
    try:
        assert warm.load_cache(cache) > 0
    finally:
        warm.close()


def test_full_queue_sheds_newest_with_retry_after():
    """Raw-socket clients (no retry logic) flood a queue of 1: at least
    one must see an honest ``RETRY_AFTER`` frame, and the counter must
    say so.  Workers=0 keeps the test fast; the in-process path is
    throttled by a single dispatcher grinding real evaluations."""
    batch = _batch(40)
    flood = 12

    async def one_raw_client(host, port, request_id):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(protocol.encode_request(request_id, "dnn", batch))
            await writer.drain()
            frame = await protocol.read_frame(reader)
            return frame.type
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def main():
        async with BatchServer(
            workers=0, queue_limit=1, dispatchers=1, retry_after_s=0.02
        ) as server:
            types = await asyncio.gather(*(
                one_raw_client(server.host, server.port, i + 1)
                for i in range(flood)
            ))
            return types, server.stats

    types, stats = asyncio.run(main())
    assert stats.shed_queue_full >= 1
    assert types.count(protocol.MSG_RETRY_AFTER) == stats.shed_queue_full
    assert types.count(protocol.MSG_RESPONSE) == stats.responses_ok
    assert stats.responses_ok >= 1  # the queue kept draining under load


def test_client_retries_through_backpressure_to_a_result():
    """The ServeClient spelling of the same flood: every client request
    eventually succeeds (honouring RETRY_AFTER), bit-identically."""
    batch = _batch(10)
    local = _reference("dnn", batch)

    async def main():
        async with BatchServer(
            workers=0, queue_limit=2, dispatchers=1, retry_after_s=0.01
        ) as server:
            clients = [ServeClient(server.host, server.port) for _ in range(8)]
            results = await asyncio.gather(*(
                client.evaluate("dnn", batch, deadline_s=30.0)
                for client in clients
            ))
            retries = sum(client.retries_after for client in clients)
            for client in clients:
                await client.aclose()
            return results, retries, server.stats

    results, retries, stats = asyncio.run(main())
    for result in results:
        np.testing.assert_array_equal(result.ratios, local.ratios)
    assert retries == stats.shed_queue_full


def test_expired_deadline_answered_with_deadline_frame_not_work():
    """A request whose deadline has already passed at dispatch must be
    shed (deadline frame), not evaluated.  A slow request in front of it
    on the single dispatcher guarantees the 1 ms deadline expires while
    the request is still queued."""
    slow_batch = _batch(3000)
    batch = _batch(4)

    async def main():
        async with BatchServer(
            workers=0, dispatchers=1, default_deadline_s=30.0
        ) as server:
            async with ServeClient(server.host, server.port) as blocker:
                async with ServeClient(server.host, server.port) as client:
                    ahead = asyncio.ensure_future(
                        blocker.evaluate("dnn", slow_batch, deadline_s=30.0)
                    )
                    await asyncio.sleep(0.005)  # let the slow job dispatch
                    begin = time.monotonic()
                    with pytest.raises(DeadlineError):
                        # 1 ms deadline: expired while queued.
                        await client.evaluate("dnn", batch, deadline_s=0.001)
                    elapsed = time.monotonic() - begin
                    await ahead
                    return elapsed, server.stats

    elapsed, stats = asyncio.run(main())
    # Shed pre-dispatch normally; a very fast dispatcher may instead
    # catch the expiry inside evaluate_job (deadline_exceeded).
    assert stats.shed_over_deadline + stats.deadline_exceeded >= 1
    assert elapsed < 10.0  # bounded, nowhere near a hang


def test_garbage_bytes_drop_connection_but_not_server():
    batch = _batch(4)
    local = _reference("dnn", batch)

    async def main():
        async with BatchServer(workers=0) as server:
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"this is not a GFS1 frame at all" * 4)
            await writer.drain()
            assert await reader.read() == b""  # server hung up on us
            writer.close()
            await writer.wait_closed()
            # A well-behaved client right after is served normally.
            async with ServeClient(server.host, server.port) as client:
                result = await client.evaluate("dnn", batch, deadline_s=30.0)
            return result, server.stats

    result, stats = asyncio.run(main())
    assert stats.protocol_errors >= 1
    np.testing.assert_array_equal(result.ratios, local.ratios)


def test_ping_pong_and_unknown_domain_error():
    async def main():
        async with BatchServer(workers=0) as server:
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(protocol.encode_frame(protocol.MSG_PING, 77))
            await writer.drain()
            pong = await protocol.read_frame(reader)
            writer.close()
            await writer.wait_closed()

            async with ServeClient(server.host, server.port) as client:
                with pytest.raises(RemoteError):
                    await client.evaluate(
                        "no-such-domain", _batch(2), deadline_s=30.0
                    )
            return pong, server.stats

    pong, stats = asyncio.run(main())
    assert pong.type == protocol.MSG_PONG and pong.request_id == 77
    assert stats.worker_errors >= 1


def test_server_validates_queue_limit():
    with pytest.raises(ParameterError):
        BatchServer(queue_limit=0)
