"""Tests for tornado sensitivity analysis."""

import dataclasses

import pytest

from repro.analysis.montecarlo import ParameterDistribution
from repro.analysis.sensitivity import tornado
from repro.core.scenario import Scenario
from repro.operation.energy import OperatingProfile
from repro.operation.model import OperationModel


def _set_use_intensity(comparator, value):
    suite = comparator.suite.with_overrides(
        operation=OperationModel(
            energy_source=value, profile=comparator.suite.operation.profile
        )
    )
    return dataclasses.replace(comparator, suite=suite)


def _set_duty(comparator, value):
    operation = comparator.suite.operation
    suite = comparator.suite.with_overrides(
        operation=OperationModel(
            energy_source=operation.energy_source,
            profile=OperatingProfile(duty_cycle=value),
        )
    )
    return dataclasses.replace(comparator, suite=suite)


@pytest.fixture
def distributions():
    return [
        ParameterDistribution("use_intensity", 30.0, 700.0, _set_use_intensity),
        ParameterDistribution("duty_cycle", 0.05, 0.95, _set_duty),
    ]


@pytest.fixture
def scenario():
    return Scenario(num_apps=3, app_lifetime_years=1.0, volume=10_000)


def test_entries_one_per_knob(dnn_comparator, scenario, distributions):
    result = tornado(dnn_comparator, scenario, distributions)
    assert len(result.entries) == 2
    assert {e.name for e in result.entries} == {"use_intensity", "duty_cycle"}


def test_baseline_matches_direct(dnn_comparator, scenario, distributions):
    result = tornado(dnn_comparator, scenario, distributions)
    assert result.baseline_ratio == pytest.approx(dnn_comparator.ratio(scenario))


def test_sorted_by_span(dnn_comparator, scenario, distributions):
    entries = tornado(dnn_comparator, scenario, distributions).sorted_by_span()
    spans = [e.span for e in entries]
    assert spans == sorted(spans, reverse=True)


def test_span_definition(dnn_comparator, scenario, distributions):
    entry = tornado(dnn_comparator, scenario, distributions).entries[0]
    assert entry.span == pytest.approx(abs(entry.ratio_at_high - entry.ratio_at_low))


def test_higher_intensity_raises_ratio(dnn_comparator, scenario, distributions):
    """FPGA uses 3x power, so dirtier use-phase energy hurts it more."""
    result = tornado(dnn_comparator, scenario, distributions)
    intensity = next(e for e in result.entries if e.name == "use_intensity")
    assert intensity.ratio_at_high > intensity.ratio_at_low


def test_rows_export(dnn_comparator, scenario, distributions):
    rows = tornado(dnn_comparator, scenario, distributions).rows()
    assert len(rows) == 2
    assert set(rows[0]) == {
        "parameter", "low", "high", "ratio_at_low", "ratio_at_high",
        "span", "flips_winner",
    }


def test_flips_winner_flag(dnn_comparator, scenario, distributions):
    result = tornado(dnn_comparator, scenario, distributions)
    for entry in result.entries:
        crosses = (entry.ratio_at_low - 1.0) * (entry.ratio_at_high - 1.0) < 0.0
        assert entry.flips_winner == crosses
