"""Tests for monolithic and advanced packaging models."""

import pytest

from repro.errors import ParameterError
from repro.packaging.advanced import AdvancedPackagingModel, PackageStyle
from repro.packaging.monolithic import MonolithicPackagingModel


@pytest.fixture
def mono():
    return MonolithicPackagingModel()


class TestMonolithic:
    def test_package_area_uses_fanout(self, mono):
        assert mono.package_area_mm2(100.0) == pytest.approx(100.0 * mono.fanout_factor)

    def test_components_sum(self, mono):
        result = mono.assess_package(100.0)
        assert result.total_kg == pytest.approx(result.substrate_kg + result.assembly_kg)

    def test_larger_die_larger_footprint(self, mono):
        assert mono.per_package_kg(400.0) > mono.per_package_kg(100.0)

    def test_mass_grows_with_area(self, mono):
        assert mono.package_mass_g(400.0) > mono.package_mass_g(100.0) > mono.base_mass_g

    def test_assembly_component_independent_of_area(self, mono):
        small = mono.assess_package(50.0)
        large = mono.assess_package(500.0)
        assert small.assembly_kg == pytest.approx(large.assembly_kg)

    def test_rejects_non_positive_die(self, mono):
        with pytest.raises(ParameterError):
            mono.assess_package(0.0)

    def test_rejects_bad_fanout(self):
        with pytest.raises(ParameterError):
            MonolithicPackagingModel(fanout_factor=0.0)


class TestAdvanced:
    def test_interposer_more_expensive_than_monolithic_substrate(self):
        adv = AdvancedPackagingModel(style=PackageStyle.INTERPOSER)
        mono = adv.substrate
        total_area = 300.0
        assert adv.per_package_kg([total_area]) > mono.per_package_kg(total_area)

    def test_style_ordering_rdl_cheapest(self):
        areas = [200.0, 100.0]
        rdl = AdvancedPackagingModel(style="rdl").per_package_kg(areas)
        emib = AdvancedPackagingModel(style="emib").per_package_kg(areas)
        interposer = AdvancedPackagingModel(style="interposer").per_package_kg(areas)
        assert rdl < emib < interposer

    def test_more_chiplets_more_bonding(self):
        adv = AdvancedPackagingModel(style="emib")
        one = adv.per_package_kg([300.0])
        three = adv.per_package_kg([100.0, 100.0, 100.0])
        assert three > one

    def test_empty_chiplet_list_rejected(self):
        with pytest.raises(ParameterError):
            AdvancedPackagingModel().assess_package([])

    def test_negative_chiplet_rejected(self):
        with pytest.raises(ParameterError):
            AdvancedPackagingModel().assess_package([100.0, -5.0])

    def test_unknown_style_rejected(self):
        with pytest.raises(ParameterError, match="unknown package style"):
            AdvancedPackagingModel(style="origami").assess_package([100.0])

    def test_bonding_yield_bounds(self):
        with pytest.raises(ParameterError):
            AdvancedPackagingModel(bonding_yield=1.5)
        with pytest.raises(ParameterError):
            AdvancedPackagingModel(bonding_yield=0.0)

    def test_lower_bonding_yield_costs_more(self):
        good = AdvancedPackagingModel(style="tsv_3d", bonding_yield=0.999)
        bad = AdvancedPackagingModel(style="tsv_3d", bonding_yield=0.90)
        areas = [100.0] * 4
        assert bad.per_package_kg(areas) > good.per_package_kg(areas)

    def test_interposer_adds_carrier_mass(self):
        adv = AdvancedPackagingModel(style="interposer")
        mono_mass = adv.substrate.assess_package(300.0).package_mass_g
        adv_mass = adv.assess_package([300.0]).package_mass_g
        assert adv_mass > mono_mass
