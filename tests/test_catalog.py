"""Tests for the Table 2/3 testcase catalog."""

import pytest

from repro.devices.catalog import (
    DOMAIN_NAMES,
    INDUSTRY_ASICS,
    INDUSTRY_FPGAS,
    DomainSpec,
    get_domain,
    get_industry_device,
    list_industry_devices,
)
from repro.errors import ParameterError, UnknownEntityError


def test_three_domains_in_paper_order():
    assert DOMAIN_NAMES == ("dnn", "imgproc", "crypto")


def test_table2_ratios_verbatim():
    assert get_domain("dnn").area_ratio == 4.0
    assert get_domain("dnn").power_ratio == 3.0
    assert get_domain("imgproc").area_ratio == 7.42
    assert get_domain("imgproc").power_ratio == 1.25
    assert get_domain("crypto").area_ratio == 1.0
    assert get_domain("crypto").power_ratio == 1.0


def test_domains_at_10nm():
    for name in DOMAIN_NAMES:
        assert get_domain(name).node_name == "10nm"


def test_iso_performance_devices_apply_ratios():
    domain = get_domain("dnn")
    fpga = domain.fpga_device()
    asic = domain.asic_device()
    assert fpga.area_mm2 == pytest.approx(asic.area_mm2 * 4.0)
    assert fpga.peak_power_w == pytest.approx(asic.peak_power_w * 3.0)


def test_crypto_devices_identical_silicon():
    domain = get_domain("crypto")
    assert domain.fpga_device().area_mm2 == domain.asic_device().area_mm2
    assert domain.fpga_device().peak_power_w == domain.asic_device().peak_power_w


def test_unknown_domain():
    with pytest.raises(UnknownEntityError):
        get_domain("quantum")


def test_table3_verbatim():
    asic1 = get_industry_device("industry_asic1")
    assert (asic1.area_mm2, asic1.peak_power_w, asic1.node_name) == (340.0, 70.0, "12nm")
    asic2 = get_industry_device("industry_asic2")
    assert (asic2.area_mm2, asic2.peak_power_w, asic2.node_name) == (600.0, 192.0, "7nm")
    fpga1 = get_industry_device("industry_fpga1")
    assert (fpga1.area_mm2, fpga1.peak_power_w, fpga1.node_name) == (380.0, 160.0, "14nm")
    fpga2 = get_industry_device("industry_fpga2")
    assert (fpga2.area_mm2, fpga2.peak_power_w, fpga2.node_name) == (550.0, 220.0, "10nm")


def test_industry_listing_complete():
    assert len(list_industry_devices()) == 4
    assert set(INDUSTRY_ASICS) | set(INDUSTRY_FPGAS) == set(list_industry_devices())


def test_unknown_industry_device():
    with pytest.raises(UnknownEntityError):
        get_industry_device("industry_gpu1")


def test_domain_spec_validation():
    with pytest.raises(ParameterError):
        DomainSpec("bad", area_ratio=0.0, power_ratio=1.0, asic_area_mm2=10.0,
                   asic_power_w=1.0)


def test_fpga_areas_under_reticle_limit():
    """All iso-performance FPGAs must be manufacturable monolithically."""
    from repro.units import RETICLE_LIMIT_MM2

    for name in DOMAIN_NAMES:
        assert get_domain(name).fpga_device().area_mm2 <= RETICLE_LIMIT_MM2
