"""Tests for the async batch-serving front-end and engine concurrency.

Parity: everything served through :class:`AsyncEvaluationEngine` must be
bit-identical to the sync engine/analysis spellings.  Concurrency: the
micro-batcher must coalesce concurrent clients without ever recomputing
a cell, and the engine's shared singletons (``build_suite_cached``, the
default engine) must be safe to hammer from threads and tasks.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.analysis.heatmap import pairwise_heatmap_batch
from repro.analysis.sweep import sweep_batch
from repro.config import Parameters
from repro.core.scenario import Scenario
from repro.engine import (
    AsyncEvaluationEngine,
    EvaluationEngine,
    build_suite_cached,
    default_engine,
    reset_default_engine,
)
from repro.errors import ParameterError

BASE = Scenario(num_apps=5, app_lifetime_years=2.0, volume=1_000_000)


# ----------------------------------------------------------------------
# Parity with the sync spellings
# ----------------------------------------------------------------------


def test_async_heatmap_matches_sync(dnn_comparator):
    async def main():
        async with AsyncEvaluationEngine(batch_window_s=0.0) as served:
            return await served.heatmap_batch(
                dnn_comparator, BASE,
                "num_apps", tuple(range(1, 9)), "lifetime", (0.5, 1.0, 2.0),
            )

    result = asyncio.run(main())
    sync = pairwise_heatmap_batch(
        dnn_comparator, BASE,
        "num_apps", tuple(range(1, 9)), "lifetime", (0.5, 1.0, 2.0),
        engine=EvaluationEngine(),
    )
    np.testing.assert_array_equal(result.ratios, sync.ratios)
    assert result.x_values == sync.x_values
    assert result.y_values == sync.y_values


def test_async_sweep_matches_sync(dnn_comparator):
    values = [1, 2, 3, 4, 5, 6, 7, 8]

    async def main():
        async with AsyncEvaluationEngine(batch_window_s=0.0) as served:
            return await served.sweep_batch(
                dnn_comparator, BASE, "num_apps", values
            )

    result = asyncio.run(main())
    sync = sweep_batch(dnn_comparator, BASE, "num_apps", values,
                       engine=EvaluationEngine())
    np.testing.assert_array_equal(result.ratios, sync.ratios)
    np.testing.assert_array_equal(result.fpga_totals, sync.fpga_totals)
    np.testing.assert_array_equal(result.winners, sync.winners)


def test_async_evaluate_many_matches_sync(dnn_comparator):
    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=1.0, volume=1_000)
        for n in range(1, 13)
    ]

    async def main():
        async with AsyncEvaluationEngine() as served:
            return await served.evaluate_many(dnn_comparator, scenarios)

    results = asyncio.run(main())
    sync = EvaluationEngine().evaluate_many(dnn_comparator, scenarios)
    assert results == sync


def test_async_evaluate_many_ragged_scenarios(dnn_comparator):
    """Heterogeneous lifetimes take the object path; results still agree."""
    scenarios = [
        Scenario(num_apps=2, app_lifetime_years=[1.0, 2.0], volume=100),
        Scenario(num_apps=2, app_lifetime_years=1.0, volume=100),
    ]

    async def main():
        async with AsyncEvaluationEngine() as served:
            return await served.evaluate_many(dnn_comparator, scenarios)

    results = asyncio.run(main())
    expected = tuple(dnn_comparator.compare(s) for s in scenarios)
    assert results == expected


def test_async_scalar_vector_cached_served_all_agree(dnn_comparator):
    """Acceptance criterion: all four paths bit-identical on one grid."""
    grid = (
        dnn_comparator, BASE,
        "num_apps", tuple(range(1, 11)), "lifetime", (0.5, 1.5, 2.5),
    )
    scalar = pairwise_heatmap_batch(
        *grid, engine=EvaluationEngine(vectorize=False)
    )
    shared = EvaluationEngine()
    vector = pairwise_heatmap_batch(*grid, engine=shared)
    cached = pairwise_heatmap_batch(*grid, engine=shared)  # warm gather

    async def main():
        async with AsyncEvaluationEngine(shared) as served:
            return await served.heatmap_batch(*grid)

    served = asyncio.run(main())
    np.testing.assert_array_equal(vector.ratios, scalar.ratios)
    np.testing.assert_array_equal(cached.ratios, scalar.ratios)
    np.testing.assert_array_equal(served.ratios, scalar.ratios)


# ----------------------------------------------------------------------
# Coalescing and deduplication
# ----------------------------------------------------------------------


def test_concurrent_clients_never_recompute_cells(dnn_comparator):
    engine = EvaluationEngine()
    x_values = tuple(range(1, 11))
    y_values = (1.0, 2.0, 3.0)

    async def main():
        async with AsyncEvaluationEngine(
            engine, batch_window_s=0.005
        ) as served:
            async def client():
                return await served.heatmap_batch(
                    dnn_comparator, BASE,
                    "num_apps", x_values, "lifetime", y_values,
                )

            results = await asyncio.gather(*(client() for _ in range(6)))
            return results, served

    results, served = asyncio.run(main())
    for other in results[1:]:
        np.testing.assert_array_equal(results[0].ratios, other.ratios)
    # 6 clients x 30 cells, but only the 30 unique cells were computed.
    assert engine.rows_computed == len(x_values) * len(y_values)
    assert served.requests_served == 6
    assert served.batches_fused >= 1
    assert served.requests_coalesced >= 2


def test_later_requests_hit_the_shared_store(dnn_comparator):
    engine = EvaluationEngine()

    async def main():
        async with AsyncEvaluationEngine(engine) as served:
            await served.sweep_batch(
                dnn_comparator, BASE, "num_apps", list(range(1, 21))
            )
            computed_after_first = engine.rows_computed
            await served.sweep_batch(
                dnn_comparator, BASE, "num_apps", list(range(1, 21))
            )
            return computed_after_first

    computed_after_first = asyncio.run(main())
    assert computed_after_first == 20
    assert engine.rows_computed == 20  # second request: pure store gather


def test_mixed_comparator_requests_are_grouped(dnn_comparator, suite):
    from repro.core.comparison import PlatformComparator

    other = PlatformComparator.for_domain("crypto", suite)
    engine = EvaluationEngine()

    async def main():
        async with AsyncEvaluationEngine(
            engine, batch_window_s=0.005
        ) as served:
            a, b = await asyncio.gather(
                served.sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2, 3]),
                served.sweep_batch(other, BASE, "num_apps", [1, 2, 3]),
            )
            return a, b

    a, b = asyncio.run(main())
    sync_a = sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2, 3],
                         engine=EvaluationEngine())
    sync_b = sweep_batch(other, BASE, "num_apps", [1, 2, 3],
                         engine=EvaluationEngine())
    np.testing.assert_array_equal(a.ratios, sync_a.ratios)
    np.testing.assert_array_equal(b.ratios, sync_b.ratios)


def test_async_errors_propagate_to_awaiter(dnn_comparator):
    async def main():
        async with AsyncEvaluationEngine() as served:
            await served.sweep_batch(dnn_comparator, BASE, "bogus-axis", [1])

    with pytest.raises(ParameterError):
        asyncio.run(main())


def test_async_engine_rejects_use_after_close(dnn_comparator):
    async def main():
        served = AsyncEvaluationEngine()
        served.close()
        await served.evaluate_batch(dnn_comparator, (BASE,))

    with pytest.raises(ParameterError):
        asyncio.run(main())


def test_async_engine_does_not_close_injected_engine(dnn_comparator):
    engine = EvaluationEngine()

    async def main():
        async with AsyncEvaluationEngine(engine) as served:
            await served.sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2])

    asyncio.run(main())
    # The injected engine survives the service shutdown.
    assert engine.evaluate(dnn_comparator, BASE) == dnn_comparator.compare(BASE)


def test_async_engine_validates_arguments():
    with pytest.raises(ParameterError):
        AsyncEvaluationEngine(batch_window_s=-0.1)
    with pytest.raises(ParameterError):
        AsyncEvaluationEngine(workers=0)


def test_dispatch_failure_fails_futures_instead_of_hanging(
    dnn_comparator, monkeypatch
):
    """An exception before the guarded engine call (e.g. in digesting)
    must be delivered to every queued client — never strand them on
    ``await`` with a dead flusher task."""
    from repro.engine import service as service_module

    def broken_digest(comparator):
        raise RuntimeError("digest exploded")

    monkeypatch.setattr(service_module, "comparator_digest", broken_digest)

    async def main():
        async with AsyncEvaluationEngine(batch_window_s=0.001) as served:
            with pytest.raises(RuntimeError, match="digest exploded"):
                await asyncio.wait_for(
                    served.sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2]),
                    timeout=5.0,
                )

    asyncio.run(main())


def test_eager_single_skips_the_window(dnn_comparator):
    """With eager_single a lone request must not wait out the window."""

    async def main():
        async with AsyncEvaluationEngine(
            batch_window_s=30.0, eager_single=True
        ) as served:
            return await asyncio.wait_for(
                served.sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2, 3]),
                timeout=5.0,  # would need ~30s if the window were held
            )

    result = asyncio.run(main())
    sync = sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2, 3],
                       engine=EvaluationEngine())
    np.testing.assert_array_equal(result.ratios, sync.ratios)


def test_adaptive_window_auto_eager_when_queue_idle(dnn_comparator):
    """The default adaptive window must not charge an idle-queue lone
    client the batching window — serialized requests dispatch eagerly."""

    async def main():
        async with AsyncEvaluationEngine(batch_window_s=30.0) as served:
            results = []
            for _ in range(3):  # serialized client: always alone
                results.append(await asyncio.wait_for(
                    served.sweep_batch(
                        dnn_comparator, BASE, "num_apps", [1, 2, 3]
                    ),
                    timeout=5.0,  # would need ~90s if windows were held
                ))
            return results, served.windows_skipped

    results, windows_skipped = asyncio.run(main())
    assert windows_skipped >= 3
    sync = sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2, 3],
                       engine=EvaluationEngine())
    for result in results:
        np.testing.assert_array_equal(result.ratios, sync.ratios)


def test_adaptive_window_still_fuses_concurrent_bursts(dnn_comparator):
    """Two or more pending requests must still wait the window and fuse
    under the adaptive default."""
    engine = EvaluationEngine()

    async def main():
        async with AsyncEvaluationEngine(
            engine, batch_window_s=0.005
        ) as served:
            await asyncio.gather(*(
                served.sweep_batch(dnn_comparator, BASE, "num_apps",
                                   list(range(1, 11)))
                for _ in range(4)
            ))
            return served

    served = asyncio.run(main())
    assert served.batches_fused >= 1
    assert served.requests_coalesced >= 2
    assert engine.rows_computed == 10  # fused burst computed once


# ----------------------------------------------------------------------
# close() with requests in flight
# ----------------------------------------------------------------------


def test_close_with_queued_requests_fails_every_future_without_hang(
    dnn_comparator,
):
    """Closing while requests sit in a held batching window must deliver
    an error to every queued future immediately — the flush round that
    would have answered them will never run."""

    async def main():
        served = AsyncEvaluationEngine(
            batch_window_s=60.0, adaptive_window=False, eager_single=False
        )
        tasks = [
            asyncio.create_task(
                served.sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2, 3])
            )
            for _ in range(4)
        ]
        # Let every submitter enqueue; the 60 s window now holds them.
        await asyncio.sleep(0.05)
        served.close()
        outcomes = await asyncio.wait_for(
            asyncio.gather(*tasks, return_exceptions=True), timeout=5.0
        )
        return outcomes, served.requests_served

    outcomes, requests_served = asyncio.run(main())
    assert len(outcomes) == 4
    for outcome in outcomes:
        assert isinstance(outcome, ParameterError)
        assert "closed with requests in flight" in str(outcome)
    assert requests_served == 0


def test_close_is_idempotent_with_requests_in_flight(dnn_comparator):
    """Double (and post-use) close must be a no-op, not a double error
    delivery or a crash on the already-shut executor."""

    async def main():
        served = AsyncEvaluationEngine(
            batch_window_s=60.0, adaptive_window=False, eager_single=False
        )
        task = asyncio.create_task(
            served.sweep_batch(dnn_comparator, BASE, "num_apps", [1])
        )
        await asyncio.sleep(0.05)
        served.close()
        served.close()
        with pytest.raises(ParameterError):
            await asyncio.wait_for(task, timeout=5.0)
        served.close()
        # And new work is refused cleanly after close.
        with pytest.raises(ParameterError, match="closed"):
            await served.evaluate_batch(dnn_comparator, (BASE,))

    asyncio.run(main())


def test_close_waits_for_dispatched_requests_and_delivers_results(
    dnn_comparator,
):
    """A request already *dispatched* to the worker pool when close()
    lands must complete and deliver its result — only queued-undispatched
    requests are failed.  The engine wrapper below gates the dispatch so
    the test deterministically closes mid-flight."""
    engine = EvaluationEngine()
    started = threading.Event()
    release = threading.Event()
    real_evaluate_batch = engine.evaluate_batch

    def gated_evaluate_batch(comparator, batch):
        started.set()
        assert release.wait(timeout=10.0)
        return real_evaluate_batch(comparator, batch)

    engine.evaluate_batch = gated_evaluate_batch

    async def main():
        served = AsyncEvaluationEngine(engine, batch_window_s=0.0)
        task = asyncio.create_task(
            served.sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2, 3])
        )
        # Wait (off-loop) until the request is provably on the worker
        # pool — it is no longer queued, so close() must not fail it.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, started.wait)
        release.set()
        served.close()  # shutdown(wait=True) joins the in-flight dispatch
        return await asyncio.wait_for(task, timeout=5.0)

    result = asyncio.run(main())
    sync = sweep_batch(dnn_comparator, BASE, "num_apps", [1, 2, 3],
                       engine=EvaluationEngine())
    np.testing.assert_array_equal(result.ratios, sync.ratios)


# ----------------------------------------------------------------------
# Engine concurrency: shared singletons hammered from threads
# ----------------------------------------------------------------------


def _hammer(worker, threads: int = 16):
    """Run ``worker`` on many threads through a start barrier."""
    barrier = threading.Barrier(threads)
    outputs: list[object] = [None] * threads
    errors: list[BaseException] = []

    def body(slot: int) -> None:
        try:
            barrier.wait()
            outputs[slot] = worker()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    workers = [
        threading.Thread(target=body, args=(slot,)) for slot in range(threads)
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert not errors, errors
    return outputs


def test_build_suite_cached_single_flight_under_threads():
    """Racing threads must all observe the *same* suite object."""
    from repro.engine import engine as engine_module

    params = Parameters(duty_cycle=0.123456)
    with engine_module._SUITE_LOCK:
        engine_module._SUITE_CACHE.pop(params, None)
    suites = _hammer(lambda: build_suite_cached(params))
    assert all(suite is suites[0] for suite in suites)
    assert suites[0] == params.build_suite()


def test_default_engine_singleton_under_threads():
    reset_default_engine()
    try:
        engines = _hammer(default_engine)
        assert all(engine is engines[0] for engine in engines)
    finally:
        reset_default_engine()


def test_shared_engine_hammered_from_threads(dnn_comparator):
    """Concurrent evaluate calls on one engine stay correct and race-free."""
    engine = EvaluationEngine()
    scenarios = [
        Scenario(num_apps=n, app_lifetime_years=1.0, volume=2_000)
        for n in range(1, 17)
    ]
    expected = tuple(dnn_comparator.compare(s) for s in scenarios)

    def worker():
        return engine.evaluate_many(dnn_comparator, scenarios)

    for results in _hammer(worker, threads=12):
        assert results == expected
    # Every thread saw the same 16 cells; they were computed at most once
    # per racing wave, never corrupted (16 <= computed <= 16 * threads).
    assert engine.rows_computed >= 16
    assert engine.cache_stats.hits + engine.cache_stats.misses == 12 * 16


def test_store_hammered_by_mixed_batch_and_object_readers(dnn_comparator):
    """Batch gathers and object materialisation race on one store."""
    engine = EvaluationEngine(cache_size=64)  # small: forces evictions
    values = list(range(1, 33))
    reference = sweep_batch(dnn_comparator, BASE, "num_apps", values,
                            engine=EvaluationEngine())

    def batch_worker():
        result = sweep_batch(dnn_comparator, BASE, "num_apps", values,
                             engine=engine)
        np.testing.assert_array_equal(result.ratios, reference.ratios)
        return True

    def object_worker():
        scenario = BASE.with_num_apps(5)
        return engine.evaluate(dnn_comparator, scenario).summary()

    outputs = _hammer(
        lambda: (batch_worker(), object_worker()), threads=8
    )
    expected = dnn_comparator.compare(BASE.with_num_apps(5)).summary()
    for _, summary in outputs:
        assert summary == expected
