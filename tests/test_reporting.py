"""Tests for ASCII tables, charts, CSV and Markdown reporting."""

import csv

import pytest

from repro.reporting.chart import bar_chart, line_chart
from repro.reporting.csvout import write_csv
from repro.reporting.markdown import markdown_table
from repro.reporting.table import format_table


class TestTable:
    def test_basic_render(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4  # header, rule, 2 rows

    def test_title_rendered(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.startswith("My Table")

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header
        assert header.index("c") < header.index("a")

    def test_missing_keys_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert text  # renders without KeyError

    def test_float_formatting(self):
        text = format_table([{"v": 1234.5678}], precision=2)
        assert "1,234.57" in text

    def test_scientific_for_extremes(self):
        text = format_table([{"v": 1.0e9}], precision=2)
        assert "e+" in text

    def test_bool_rendering(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"
        assert format_table([], title="T") == "T"


class TestLineChart:
    def test_contains_series_symbols_and_legend(self):
        text = line_chart([0, 1, 2], {"FPGA": [1, 2, 3], "ASIC": [3, 2, 1]})
        assert "*" in text and "o" in text
        assert "FPGA" in text and "ASIC" in text

    def test_constant_series_no_crash(self):
        assert line_chart([0, 1], {"flat": [5, 5]})

    def test_title(self):
        assert line_chart([0, 1], {"s": [0, 1]}, title="T").startswith("T")

    def test_empty_chart(self):
        assert line_chart([], {}) == "(empty chart)"


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart(["a", "b"], [10.0, 5.0])
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_negative_bars_marked(self):
        text = bar_chart(["credit"], [-3.0])
        assert "<" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_all_zero_values(self):
        assert bar_chart(["a"], [0.0])


class TestCsv:
    def test_round_trip(self, tmp_path):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        path = write_csv(tmp_path / "out.csv", rows)
        with path.open() as handle:
            read = list(csv.DictReader(handle))
        assert read == [{"x": "1", "y": "a"}, {"x": "2", "y": "b"}]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "nested" / "out.csv", [{"a": 1}])
        assert path.exists()

    def test_union_of_columns(self, tmp_path):
        rows = [{"a": 1}, {"b": 2}]
        path = write_csv(tmp_path / "u.csv", rows)
        header = path.read_text().splitlines()[0]
        assert header == "a,b"

    def test_explicit_columns(self, tmp_path):
        path = write_csv(tmp_path / "c.csv", [{"a": 1, "b": 2}], columns=["b"])
        assert path.read_text().splitlines()[0] == "b"


class TestMarkdown:
    def test_structure(self):
        text = markdown_table([{"a": 1, "b": 2.5}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "2.500" in lines[2]

    def test_empty(self):
        assert markdown_table([]) == "(empty table)"

    def test_bool_cells(self):
        assert "yes" in markdown_table([{"ok": True}])
