"""Tests for the EPA WARM end-of-life dataset."""

import pytest

from repro.config import TABLE1_RANGES
from repro.data.warm import get_material, list_materials
from repro.errors import UnknownEntityError


def test_default_material_exists():
    entry = get_material("mixed_electronics")
    assert entry.recycle_credit_mtco2e_per_ton > 0


def test_all_materials_within_table1_ranges():
    credit_range = TABLE1_RANGES["recycle_credit_mtco2e_per_ton"]
    discard_range = TABLE1_RANGES["discard_mtco2e_per_ton"]
    for name in list_materials():
        entry = get_material(name)
        assert credit_range.contains(entry.recycle_credit_mtco2e_per_ton), name
        assert discard_range.contains(entry.discard_mtco2e_per_ton), name


def test_mtco2e_per_ton_equals_kg_per_kg():
    entry = get_material("copper")
    assert entry.recycle_credit_kg_per_kg == entry.recycle_credit_mtco2e_per_ton
    assert entry.discard_kg_per_kg == entry.discard_mtco2e_per_ton


def test_unknown_material():
    with pytest.raises(UnknownEntityError):
        get_material("vibranium")


def test_recycled_content_is_fraction():
    for name in list_materials():
        entry = get_material(name)
        assert 0.0 <= entry.typical_recycled_content <= 1.0


def test_lookup_is_case_insensitive():
    assert get_material(" Copper ") is get_material("copper")
