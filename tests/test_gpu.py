"""Tests for the GPU extension (device, lifecycle, three-way comparison)."""

import pytest

from repro.core.gpu_model import GpuLifecycleModel
from repro.core.scenario import Scenario
from repro.devices.catalog import DOMAIN_NAMES, GPU_RATIOS, get_domain, gpu_device_for
from repro.devices.gpu import GpuDevice
from repro.errors import ParameterError
from repro.experiments.ext_gpu import three_way_totals


@pytest.fixture
def gpu():
    return GpuDevice("g", area_mm2=600.0, node_name="7nm", peak_power_w=300.0)


class TestGpuDevice:
    def test_gates_from_area(self, gpu):
        assert gpu.logic_gates_mgates == pytest.approx(600.0 * 17.0)

    def test_defaults(self, gpu):
        assert gpu.chip_lifetime_years == 6.0
        assert gpu.market_amortisation == 10.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            GpuDevice("g", area_mm2=0.0, node_name="7nm", peak_power_w=1.0)
        with pytest.raises(ParameterError):
            GpuDevice("g", area_mm2=1.0, node_name="7nm", peak_power_w=1.0,
                      market_amortisation=0.0)

    def test_catalog_ratios_cover_all_domains(self):
        assert set(GPU_RATIOS) == set(DOMAIN_NAMES)

    def test_gpu_device_for_applies_ratios(self):
        domain = get_domain("dnn")
        gpu = gpu_device_for("dnn")
        area_ratio, power_ratio = GPU_RATIOS["dnn"]
        assert gpu.area_mm2 == pytest.approx(domain.asic_area_mm2 * area_ratio)
        assert gpu.peak_power_w == pytest.approx(domain.asic_power_w * power_ratio)


class TestGpuLifecycle:
    def test_embodied_paid_once(self, gpu, suite):
        model = GpuLifecycleModel(gpu, suite)
        one = model.assess(Scenario(num_apps=1, app_lifetime_years=1.0, volume=1000))
        five = model.assess(Scenario(num_apps=5, app_lifetime_years=1.0, volume=1000))
        assert five.footprint.manufacturing == pytest.approx(
            one.footprint.manufacturing
        )
        assert five.footprint.operational == pytest.approx(
            5 * one.footprint.operational
        )

    def test_design_amortised_by_market(self, suite):
        captive = GpuDevice("g", area_mm2=600.0, node_name="7nm",
                            peak_power_w=300.0, market_amortisation=1.0)
        merchant = GpuDevice("g", area_mm2=600.0, node_name="7nm",
                             peak_power_w=300.0, market_amortisation=10.0)
        scenario = Scenario(num_apps=1, app_lifetime_years=1.0, volume=1000)
        full = GpuLifecycleModel(captive, suite).assess(scenario).footprint.design
        shared = GpuLifecycleModel(merchant, suite).assess(scenario).footprint.design
        assert shared == pytest.approx(full / 10.0)

    def test_software_appdev_cheaper_than_fpga(self, gpu, suite):
        model = GpuLifecycleModel(gpu, suite)
        scenario = Scenario(num_apps=1, app_lifetime_years=1.0, volume=1000)
        gpu_appdev = model.assess(scenario).footprint.appdev
        fpga_appdev = suite.appdev.per_application_kg(suite.fpga_effort, 1000)
        assert 0.0 < gpu_appdev < fpga_appdev

    def test_generations_shorter_lifetime(self, gpu, suite):
        model = GpuLifecycleModel(gpu, suite)
        scenario = Scenario(num_apps=13, app_lifetime_years=1.0, volume=10,
                            enforce_chip_lifetime=True)
        assert model.chip_generations(scenario) == 3  # 13 y / 6 y life


class TestThreeWay:
    def test_totals_for_all_domains(self):
        for domain in DOMAIN_NAMES:
            totals = three_way_totals(domain)
            assert set(totals) == {"gpu", "fpga", "asic"}
            assert all(v > 0 for v in totals.values())

    def test_gpu_least_sustainable_at_volume(self):
        """The paper's qualitative exclusion, quantified: at 1M units the
        GPU's power penalty makes it the worst of the three."""
        totals = three_way_totals("dnn")
        assert totals["gpu"] > totals["fpga"]
        assert totals["gpu"] > totals["asic"]

    def test_gpu_beats_asic_at_tiny_volume(self):
        """At very low volume the GPU's amortised design CFP wins over
        per-application ASIC projects."""
        scenario = Scenario(num_apps=5, app_lifetime_years=1.0, volume=100)
        totals = three_way_totals("dnn", scenario)
        assert totals["gpu"] < totals["asic"]
