"""Tests for Monte-Carlo uncertainty propagation."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.montecarlo import MonteCarloResult, ParameterDistribution, monte_carlo
from repro.core.scenario import Scenario
from repro.errors import ParameterError
from repro.operation.model import OperationModel


def _set_use_intensity(comparator, value):
    """Knob: operational carbon intensity in g/kWh."""
    suite = comparator.suite.with_overrides(
        operation=OperationModel(
            energy_source=value, profile=comparator.suite.operation.profile
        )
    )
    return dataclasses.replace(comparator, suite=suite)


@pytest.fixture
def intensity_dist():
    return ParameterDistribution(
        name="use_intensity_g_per_kwh", low=30.0, high=700.0, apply=_set_use_intensity
    )


@pytest.fixture
def scenario():
    return Scenario(num_apps=3, app_lifetime_years=1.0, volume=10_000)


def test_reproducible_with_seed(dnn_comparator, scenario, intensity_dist):
    a = monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=20, seed=7)
    b = monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=20, seed=7)
    np.testing.assert_array_equal(a.ratios, b.ratios)


def test_different_seeds_differ(dnn_comparator, scenario, intensity_dist):
    a = monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=20, seed=1)
    b = monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=20, seed=2)
    assert not np.array_equal(a.ratios, b.ratios)


def test_samples_recorded(dnn_comparator, scenario, intensity_dist):
    result = monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=5)
    assert len(result.samples) == 5
    for sample in result.samples:
        assert 30.0 <= sample["use_intensity_g_per_kwh"] <= 700.0


def test_win_probability_in_unit_interval(dnn_comparator, scenario, intensity_dist):
    result = monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=30)
    assert 0.0 <= result.fpga_win_probability <= 1.0


def test_quantiles_ordered(dnn_comparator, scenario, intensity_dist):
    result = monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=50)
    quantiles = result.quantiles((0.1, 0.5, 0.9))
    assert quantiles[0.1] <= quantiles[0.5] <= quantiles[0.9]


def test_summary_keys(dnn_comparator, scenario, intensity_dist):
    summary = monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=10).summary()
    assert set(summary) == {
        "n_samples", "fpga_win_probability", "ratio_mean",
        "ratio_p05", "ratio_p50", "ratio_p95",
    }


def test_loguniform_sampling_stays_in_range():
    dist = ParameterDistribution("x", 1.0, 1000.0, lambda c, v: c, kind="loguniform")
    rng = np.random.default_rng(0)
    values = [dist.sample(rng) for _ in range(200)]
    assert all(1.0 <= v <= 1000.0 for v in values)


def test_distribution_validation():
    with pytest.raises(ParameterError):
        ParameterDistribution("x", 2.0, 1.0, lambda c, v: c)
    with pytest.raises(ParameterError):
        ParameterDistribution("x", 1.0, 2.0, lambda c, v: c, kind="gaussian")
    with pytest.raises(ParameterError):
        ParameterDistribution("x", 0.0, 2.0, lambda c, v: c, kind="loguniform")


def test_monte_carlo_argument_validation(dnn_comparator, scenario, intensity_dist):
    with pytest.raises(ParameterError):
        monte_carlo(dnn_comparator, scenario, [], n_samples=5)
    with pytest.raises(ParameterError):
        monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=0)


def test_result_type(dnn_comparator, scenario, intensity_dist):
    result = monte_carlo(dnn_comparator, scenario, [intensity_dist], n_samples=3)
    assert isinstance(result, MonteCarloResult)
    assert result.n_samples == 3


def test_quantiles_match_numpy_and_handle_non_finite():
    ratios = np.array([0.5, np.inf, 1.5, np.nan, 2.5, -np.inf, 0.9, 1.1])
    result = MonteCarloResult(ratios=ratios, samples=({},) * 8)
    finite = ratios[np.isfinite(ratios)]
    qs = (0.05, 0.25, 0.5, 0.75, 0.95)
    expected = {float(q): float(v) for q, v in zip(qs, np.quantile(finite, qs))}
    assert result.quantiles(qs) == expected
    assert result.n_non_finite == 3


def test_summary_is_constant_time_after_first_call(monkeypatch):
    """Regression: quantiles()/summary() used to re-reduce the full
    ratio array per call; the sorted finite draws are now computed once
    and cached, so repeated summaries do no further O(n) array work."""
    rng = np.random.default_rng(0)
    result = MonteCarloResult(
        ratios=rng.normal(1.5, 0.5, 50_000), samples=({},) * 50_000
    )
    counters = {"sort": 0, "quantile": 0}
    real_sort, real_quantile = np.sort, np.quantile

    def counting_sort(*args, **kwargs):
        counters["sort"] += 1
        return real_sort(*args, **kwargs)

    def counting_quantile(*args, **kwargs):
        counters["quantile"] += 1
        return real_quantile(*args, **kwargs)

    monkeypatch.setattr(np, "sort", counting_sort)
    monkeypatch.setattr(np, "quantile", counting_quantile)
    first = result.summary()
    assert counters["sort"] == 1  # the one cached sort
    counters["sort"] = counters["quantile"] = 0
    for _ in range(25):
        assert result.summary() == first
        assert result.quantiles((0.1, 0.9))[0.1] <= first["ratio_p50"]
    assert counters["sort"] == 0 and counters["quantile"] == 0
