"""Tests for the CarbonFootprint vector (with hypothesis properties)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lifecycle import CarbonFootprint

components = st.floats(min_value=-1e6, max_value=1e9, allow_nan=False)
footprints = st.builds(
    CarbonFootprint,
    design=components,
    manufacturing=components,
    packaging=components,
    eol=components,
    appdev=components,
    operational=components,
)


def test_zero_identity():
    zero = CarbonFootprint.zero()
    assert zero.total == 0.0
    fp = CarbonFootprint(design=1.0, operational=2.0)
    assert (fp + zero).as_dict() == fp.as_dict()


def test_embodied_definition():
    fp = CarbonFootprint(design=1, manufacturing=2, packaging=3, eol=-0.5,
                         appdev=10, operational=20)
    assert fp.embodied == pytest.approx(5.5)
    assert fp.deployment == pytest.approx(30.0)
    assert fp.total == pytest.approx(35.5)


@given(footprints, footprints)
def test_addition_componentwise(a, b):
    s = a + b
    for name in CarbonFootprint.COMPONENTS:
        assert getattr(s, name) == pytest.approx(getattr(a, name) + getattr(b, name))


@given(footprints)
def test_total_is_sum_of_components(fp):
    assert fp.total == pytest.approx(sum(getattr(fp, n) for n in fp.COMPONENTS))


@given(footprints, st.floats(min_value=-100, max_value=100, allow_nan=False))
def test_scaling_distributes(fp, k):
    scaled = fp.scaled(k)
    assert scaled.total == pytest.approx(fp.total * k, rel=1e-9, abs=1e-6)


@given(footprints)
def test_subtraction_inverts_addition(fp):
    diff = fp - fp
    assert diff.total == pytest.approx(0.0, abs=1e-6)


def test_mul_operator_both_sides():
    fp = CarbonFootprint(manufacturing=3.0)
    assert (fp * 2.0).manufacturing == 6.0
    assert (2.0 * fp).manufacturing == 6.0


def test_mul_rejects_non_numbers():
    fp = CarbonFootprint()
    with pytest.raises(TypeError):
        fp * "two"


def test_as_dict_includes_aggregates():
    d = CarbonFootprint(design=1.0).as_dict()
    assert d["design"] == 1.0
    assert d["embodied"] == 1.0
    assert d["total"] == 1.0
    assert set(d) == set(CarbonFootprint.COMPONENTS) | {"embodied", "deployment", "total"}


def test_fraction_of_total():
    fp = CarbonFootprint(design=1.0, operational=3.0)
    assert fp.fraction_of_total("design") == pytest.approx(0.25)
    assert CarbonFootprint.zero().fraction_of_total("design") == 0.0
    with pytest.raises(KeyError):
        fp.fraction_of_total("embodied")


def test_str_contains_total():
    text = str(CarbonFootprint(design=1234.5))
    assert "1,234.5" in text
