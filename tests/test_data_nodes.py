"""Tests for the technology-node dataset."""

import pytest

from repro.data.nodes import TechnologyNode, get_node, list_nodes
from repro.errors import ParameterError, UnknownEntityError


def test_list_nodes_order_and_count():
    names = list_nodes()
    assert names[0] == "28nm"
    assert names[-1] == "3nm"
    assert len(names) == 11


def test_get_node_by_name_and_number():
    assert get_node("10nm").feature_nm == 10.0
    assert get_node(10) is get_node("10nm")
    assert get_node(7.0).name == "7nm"
    assert get_node("  14NM ").name == "14nm"


def test_get_node_unknown():
    with pytest.raises(UnknownEntityError):
        get_node("9nm")


def test_epa_monotone_toward_advanced_nodes():
    nodes = [get_node(name) for name in list_nodes()]
    epas = [n.epa_kwh_per_cm2 for n in nodes]
    assert epas == sorted(epas), "EPA must grow toward advanced nodes"


def test_gate_density_monotone():
    nodes = [get_node(name) for name in list_nodes()]
    densities = [n.gate_density_mgates_per_mm2 for n in nodes]
    assert densities == sorted(densities)


def test_recycled_mpa_below_new():
    for name in list_nodes():
        node = get_node(name)
        assert node.mpa_recycled_kg_per_cm2 < node.mpa_new_kg_per_cm2


def test_defect_density_positive_everywhere():
    assert all(get_node(n).defect_density_per_cm2 > 0 for n in list_nodes())


def test_with_overrides_returns_copy():
    node = get_node("10nm")
    custom = node.with_overrides(defect_density_per_cm2=0.5)
    assert custom.defect_density_per_cm2 == 0.5
    assert node.defect_density_per_cm2 != 0.5
    assert custom.name == node.name


def test_invalid_node_construction():
    with pytest.raises(ParameterError):
        TechnologyNode(
            name="bad",
            feature_nm=-1.0,
            epa_kwh_per_cm2=1.0,
            gpa_kg_per_cm2=0.1,
            mpa_new_kg_per_cm2=0.1,
            mpa_recycled_kg_per_cm2=0.05,
            defect_density_per_cm2=0.1,
            line_yield=0.98,
            gate_density_mgates_per_mm2=10.0,
        )


def test_line_yield_must_be_fraction():
    with pytest.raises(ParameterError):
        TechnologyNode(
            name="bad",
            feature_nm=10.0,
            epa_kwh_per_cm2=1.0,
            gpa_kg_per_cm2=0.1,
            mpa_new_kg_per_cm2=0.1,
            mpa_recycled_kg_per_cm2=0.05,
            defect_density_per_cm2=0.1,
            line_yield=1.2,
            gate_density_mgates_per_mm2=10.0,
        )
