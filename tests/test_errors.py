"""Tests for the error hierarchy and validators."""

import pytest

from repro.errors import (
    CapacityError,
    ConfigError,
    GreenFpgaError,
    ParameterError,
    UnknownEntityError,
    require,
    require_fraction,
    require_non_negative,
    require_positive,
)


def test_hierarchy():
    assert issubclass(ParameterError, GreenFpgaError)
    assert issubclass(ParameterError, ValueError)
    assert issubclass(ConfigError, GreenFpgaError)
    assert issubclass(UnknownEntityError, KeyError)
    assert issubclass(CapacityError, GreenFpgaError)


def test_unknown_entity_message_lists_known():
    err = UnknownEntityError("node", "9nm", ["10nm", "7nm"])
    assert "9nm" in str(err)
    assert "10nm" in str(err)
    assert err.known == ["10nm", "7nm"]


def test_require_passes_and_fails():
    require(True, "fine")
    with pytest.raises(ParameterError, match="broken"):
        require(False, "broken")


def test_require_positive():
    assert require_positive(1.5, "x") == 1.5
    with pytest.raises(ParameterError):
        require_positive(0.0, "x")
    with pytest.raises(ParameterError):
        require_positive(-1.0, "x")


def test_require_non_negative():
    assert require_non_negative(0.0, "x") == 0.0
    with pytest.raises(ParameterError):
        require_non_negative(-0.1, "x")


def test_require_fraction():
    assert require_fraction(0.0, "x") == 0.0
    assert require_fraction(1.0, "x") == 1.0
    with pytest.raises(ParameterError):
        require_fraction(1.1, "x")
    with pytest.raises(ParameterError):
        require_fraction(-0.1, "x")


def test_error_message_includes_name_and_value():
    with pytest.raises(ParameterError, match="duty.*-3"):
        require_non_negative(-3.0, "duty")
