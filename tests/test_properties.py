"""Cross-module hypothesis property tests on model invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asic_model import AsicLifecycleModel
from repro.core.comparison import PlatformComparator
from repro.core.fpga_model import FpgaLifecycleModel
from repro.core.scenario import Scenario
from repro.core.suite import ModelSuite
from repro.devices.asic import AsicDevice
from repro.devices.catalog import DomainSpec
from repro.devices.fpga import FpgaDevice

SUITE = ModelSuite.default()

scenarios = st.builds(
    Scenario,
    num_apps=st.integers(min_value=1, max_value=10),
    app_lifetime_years=st.floats(min_value=0.25, max_value=10.0),
    volume=st.integers(min_value=1, max_value=10_000_000),
)

areas = st.floats(min_value=10.0, max_value=800.0)
powers = st.floats(min_value=0.1, max_value=300.0)


@settings(max_examples=30)
@given(scenarios, areas, powers)
def test_fpga_footprint_components_finite_and_positive(scenario, area, power):
    device = FpgaDevice("f", area_mm2=area, node_name="10nm", peak_power_w=power)
    fp = FpgaLifecycleModel(device, SUITE).assess(scenario).footprint
    assert fp.design > 0.0
    assert fp.manufacturing > 0.0
    assert fp.packaging > 0.0
    assert fp.operational > 0.0
    assert fp.total > 0.0


@settings(max_examples=30)
@given(scenarios, areas, powers)
def test_asic_embodied_proportional_to_num_apps(scenario, area, power):
    device = AsicDevice("a", area_mm2=area, node_name="10nm", peak_power_w=power)
    model = AsicLifecycleModel(device, SUITE)
    base = model.assess(scenario.with_num_apps(1)).footprint
    multi = model.assess(scenario).footprint
    assert multi.manufacturing == pytest.approx(
        scenario.num_apps * base.manufacturing, rel=1e-9
    )


@settings(max_examples=30)
@given(scenarios)
def test_fpga_embodied_independent_of_num_apps(scenario):
    device = FpgaDevice("f", area_mm2=200.0, node_name="10nm", peak_power_w=10.0)
    model = FpgaLifecycleModel(device, SUITE)
    base = model.assess(scenario.with_num_apps(1)).footprint
    multi = model.assess(scenario).footprint
    assert multi.embodied - multi.design == pytest.approx(
        base.embodied - base.design, rel=1e-9
    )


@settings(max_examples=20)
@given(
    scenarios,
    st.floats(min_value=1.05, max_value=8.0),
    st.floats(min_value=1.0, max_value=4.0),
)
def test_bigger_hungrier_fpga_never_cheaper(scenario, area_ratio, power_ratio):
    """Ratio is monotone in the iso-performance penalty factors."""
    lean = DomainSpec("lean", 1.0, 1.0, 100.0, 5.0)
    heavy = DomainSpec("heavy", area_ratio, power_ratio, 100.0, 5.0)
    lean_ratio = PlatformComparator.for_domain(lean, SUITE).ratio(scenario)
    heavy_ratio = PlatformComparator.for_domain(heavy, SUITE).ratio(scenario)
    assert heavy_ratio >= lean_ratio - 1e-9


@settings(max_examples=20)
@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.25, max_value=5.0),
    st.integers(min_value=100, max_value=1_000_000),
)
def test_totals_monotone_in_each_axis(num_apps, lifetime, volume):
    comparator = PlatformComparator.for_domain("dnn", SUITE)
    scenario = Scenario(num_apps=num_apps, app_lifetime_years=lifetime, volume=volume)
    base_fpga = comparator.fpga_model.total_kg(scenario)
    base_asic = comparator.asic_model.total_kg(scenario)
    grown = Scenario(
        num_apps=num_apps + 1, app_lifetime_years=lifetime + 0.5, volume=volume * 2
    )
    assert comparator.fpga_model.total_kg(grown) > base_fpga
    assert comparator.asic_model.total_kg(grown) > base_asic


@settings(max_examples=20)
@given(scenarios)
def test_more_applications_always_help_fpga_ratio(scenario):
    """FPGA:ASIC ratio is non-increasing in N_app (reuse only helps)."""
    comparator = PlatformComparator.for_domain("dnn", SUITE)
    r1 = comparator.ratio(scenario)
    r2 = comparator.ratio(scenario.with_num_apps(scenario.num_apps + 1))
    assert r2 <= r1 + 1e-9


@settings(max_examples=15)
@given(scenarios, st.floats(min_value=0.0, max_value=1.0))
def test_recycling_never_increases_total(scenario, rho):
    from repro.manufacturing.act import ManufacturingModel

    base_suite = ModelSuite.default()
    recycled = base_suite.with_overrides(
        manufacturing=ManufacturingModel(recycled_fraction=rho)
    )
    device = FpgaDevice("f", area_mm2=200.0, node_name="10nm", peak_power_w=10.0)
    base = FpgaLifecycleModel(device, base_suite).total_kg(scenario)
    better = FpgaLifecycleModel(device, recycled).total_kg(scenario)
    assert better <= base + 1e-6
